package relation

import (
	"fmt"
	"math"
	"strings"
)

// JoinEdge is one equi-join condition between two named tables:
// LeftTable.LeftCol = RightTable.RightCol. Edges are symmetric; the
// materialization orients them away from the first table of the graph.
type JoinEdge struct {
	LeftTable, LeftCol   string
	RightTable, RightCol string
}

func (e JoinEdge) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", e.LeftTable, e.LeftCol, e.RightTable, e.RightCol)
}

// JoinGraph describes an N-way join as a tree of equi-join edges over named
// base tables. Exactly len(Tables)-1 edges must connect every table (a
// spanning tree), which is the shape star and chain schemas — and the JOB
// benchmark's queries — take.
type JoinGraph struct {
	Tables []*Table
	Edges  []JoinEdge
}

// treeEdge is one validated edge oriented parent -> child in BFS order from
// the root (Tables[0]).
type treeEdge struct {
	parent, child       int // table indices
	parentCol, childCol int // column indices
}

// JoinViewColumn names the materialized view column holding base column col
// of base table table: "<table>_<col>". The registry's per-table column map
// rewrites qualified query predicates through it.
func JoinViewColumn(table, col string) string { return table + "_" + col }

// FanoutColumn names the per-base-table fanout column of a materialized join
// view. For the root table its value is 1 when the table participates in the
// row and 0 otherwise; for every other table it is the number of its rows
// matching the row's parent key (0 when absent, and 1 for dangling rows the
// full outer join preserves). "table present in row" is exactly
// "fanout >= 1", which is how the router restricts to inner-join rows.
func FanoutColumn(table string) string { return "__fanout_" + table }

// validate checks the graph is a spanning tree over typed, existing columns
// and returns its edges oriented away from Tables[0] in BFS order.
func (g *JoinGraph) validate() ([]treeEdge, error) {
	if len(g.Tables) < 2 {
		return nil, fmt.Errorf("relation: join graph needs at least 2 tables, got %d", len(g.Tables))
	}
	idx := make(map[string]int, len(g.Tables))
	for i, t := range g.Tables {
		if t.Name == "" {
			return nil, fmt.Errorf("relation: join graph table %d has no name", i)
		}
		if _, dup := idx[t.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate table %q in join graph", t.Name)
		}
		idx[t.Name] = i
	}
	if len(g.Edges) != len(g.Tables)-1 {
		return nil, fmt.Errorf("relation: join graph over %d tables needs %d edges (a spanning tree), got %d",
			len(g.Tables), len(g.Tables)-1, len(g.Edges))
	}
	// Adjacency with column indices, validating each edge.
	type half struct{ other, ownCol, otherCol int }
	adj := make([][]half, len(g.Tables))
	for _, e := range g.Edges {
		li, lok := idx[e.LeftTable]
		ri, rok := idx[e.RightTable]
		if !lok || !rok {
			return nil, fmt.Errorf("relation: join edge %s references a table outside the graph", e)
		}
		if li == ri {
			return nil, fmt.Errorf("relation: join edge %s relates a table to itself", e)
		}
		lc := g.Tables[li].ColumnIndex(e.LeftCol)
		rc := g.Tables[ri].ColumnIndex(e.RightCol)
		if lc < 0 || rc < 0 {
			return nil, fmt.Errorf("relation: join columns %q/%q not found for edge %s", e.LeftCol, e.RightCol, e)
		}
		if g.Tables[li].Cols[lc].Kind != g.Tables[ri].Cols[rc].Kind {
			return nil, fmt.Errorf("relation: join column kinds differ for edge %s: %v vs %v",
				e, g.Tables[li].Cols[lc].Kind, g.Tables[ri].Cols[rc].Kind)
		}
		adj[li] = append(adj[li], half{ri, lc, rc})
		adj[ri] = append(adj[ri], half{li, rc, lc})
	}
	// BFS from the root; with exactly n-1 edges, reaching every table proves
	// the edge set is a spanning tree.
	seen := make([]bool, len(g.Tables))
	seen[0] = true
	queue := []int{0}
	var tree []treeEdge
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, h := range adj[p] {
			if seen[h.other] {
				continue
			}
			seen[h.other] = true
			tree = append(tree, treeEdge{parent: p, child: h.other, parentCol: h.ownCol, childCol: h.otherCol})
			queue = append(queue, h.other)
		}
	}
	if len(tree) != len(g.Tables)-1 {
		var missing []string
		for i, s := range seen {
			if !s {
				missing = append(missing, g.Tables[i].Name)
			}
		}
		return nil, fmt.Errorf("relation: join graph is not connected (unreachable: %v)", missing)
	}
	return tree, nil
}

// MultiJoin materializes the full outer join of the graph's tables along its
// edge tree, NeuroCard-style. Every base row of every table appears in the
// result at least once: matched rows combine, unmatched rows survive padded
// with a NULL sentinel on the other tables' columns. Each base table T
// contributes its columns as "<T>_<col>" plus a fanout column
// FanoutColumn(T); restricting to rows with every fanout >= 1 recovers
// exactly the inner join of the full graph, and downscaling subset queries by
// fanout recovers inner-join cardinalities over any subtree (the registry's
// fanout correction), instead of relying on an inner-join materialization
// being the query's join.
//
// NULL sentinels are appended at the end of the affected column's sorted
// dictionary (greater than every real value), so every real-value range
// predicate can exclude them with one extra "< sentinel" bound.
func MultiJoin(name string, g *JoinGraph) (*Table, error) {
	tree, err := g.validate()
	if err != nil {
		return nil, err
	}
	nt := len(g.Tables)
	// State: one row assignment per result row (-1 = table absent), plus the
	// per-table fanout of each row. Seeded with every root row.
	root := g.Tables[0]
	asg := make([][]int32, 0, root.NumRows())
	fan := make([][]int32, 0, root.NumRows())
	for r := 0; r < root.NumRows(); r++ {
		a := make([]int32, nt)
		for i := range a {
			a[i] = -1
		}
		a[0] = int32(r)
		asg = append(asg, a)
		fan = append(fan, make([]int32, nt))
	}
	for _, te := range tree {
		parent, child := g.Tables[te.parent], g.Tables[te.child]
		pc, cc := parent.Cols[te.parentCol], child.Cols[te.childCol]
		// Hash the child side by raw key value.
		matches := make(map[string][]int32, cc.NumDistinct())
		for r := 0; r < child.NumRows(); r++ {
			k := cc.ValueString(cc.Codes[r])
			matches[k] = append(matches[k], int32(r))
		}
		// Keys present anywhere in the parent base table; by induction every
		// parent base row is in the state, so a child key outside this set is
		// dangling and must be preserved by the outer join.
		parentKeys := make(map[string]bool, pc.NumDistinct())
		for r := 0; r < parent.NumRows(); r++ {
			parentKeys[pc.ValueString(pc.Codes[r])] = true
		}
		nextAsg := make([][]int32, 0, len(asg))
		nextFan := make([][]int32, 0, len(fan))
		for i, a := range asg {
			if a[te.parent] < 0 {
				nextAsg = append(nextAsg, a)
				nextFan = append(nextFan, fan[i])
				continue
			}
			ms := matches[pc.ValueString(pc.Codes[a[te.parent]])]
			if len(ms) == 0 {
				nextAsg = append(nextAsg, a)
				nextFan = append(nextFan, fan[i])
				continue
			}
			for _, m := range ms {
				na := append([]int32(nil), a...)
				nf := append([]int32(nil), fan[i]...)
				na[te.child] = m
				nf[te.child] = int32(len(ms))
				nextAsg = append(nextAsg, na)
				nextFan = append(nextFan, nf)
			}
		}
		// Dangling child rows: no parent anywhere, preserved alone.
		for r := 0; r < child.NumRows(); r++ {
			if parentKeys[cc.ValueString(cc.Codes[r])] {
				continue
			}
			a := make([]int32, nt)
			for i := range a {
				a[i] = -1
			}
			a[te.child] = int32(r)
			f := make([]int32, nt)
			f[te.child] = 1
			nextAsg = append(nextAsg, a)
			nextFan = append(nextFan, f)
		}
		asg, fan = nextAsg, nextFan
	}
	// The root's fanout is its presence indicator.
	for i, a := range asg {
		if a[0] >= 0 {
			fan[i][0] = 1
		}
	}

	// Materialize: per table, its value columns (with a NULL sentinel when any
	// row misses the table) followed by its fanout column.
	cols := make([]*Column, 0, nt)
	names := make(map[string]bool)
	tableNames := make([]string, nt)
	for i, t := range g.Tables {
		tableNames[i] = t.Name
	}
	for ti, t := range g.Tables {
		absent := false
		for _, a := range asg {
			if a[ti] < 0 {
				absent = true
				break
			}
		}
		for _, src := range t.Cols {
			cn := JoinViewColumn(t.Name, src.Name)
			if names[cn] {
				return nil, fmt.Errorf("relation: join view column %q collides; rename table or column", cn)
			}
			// The "<table>_<col>" name must identify its owning table
			// unambiguously, or predicate rewriting could resolve a
			// qualified column against the wrong table.
			for _, other := range tableNames {
				if other != t.Name && strings.HasPrefix(cn, JoinViewColumn(other, "")) {
					return nil, fmt.Errorf("relation: join view column %q is ambiguous between tables %q and %q; rename table or column", cn, t.Name, other)
				}
			}
			names[cn] = true
			out, err := projectWithNull(cn, src, asg, ti, absent)
			if err != nil {
				return nil, err
			}
			cols = append(cols, out)
		}
		fn := FanoutColumn(t.Name)
		if names[fn] {
			return nil, fmt.Errorf("relation: join view column %q collides; rename table or column", fn)
		}
		names[fn] = true
		fv := make([]int64, len(fan))
		for i := range fan {
			fv[i] = int64(fan[i][ti])
		}
		cols = append(cols, NewIntColumn(fn, fv))
	}
	return NewTable(name, cols), nil
}

// projectWithNull projects src onto the result rows' assignments for table
// ti. Every base row survives a full outer join, so the dictionary is the
// source dictionary unchanged — plus, when some result row misses the table,
// a NULL sentinel appended past the greatest real value.
func projectWithNull(name string, src *Column, asg [][]int32, ti int, withNull bool) (*Column, error) {
	ndv := src.NumDistinct()
	out := &Column{Name: name, Kind: src.Kind, Codes: make([]int32, len(asg))}
	switch src.Kind {
	case KindInt:
		out.Ints = append(make([]int64, 0, ndv+1), src.Ints...)
	case KindFloat:
		out.Floats = append(make([]float64, 0, ndv+1), src.Floats...)
	case KindString:
		out.Strs = append(make([]string, 0, ndv+1), src.Strs...)
	}
	if withNull {
		switch src.Kind {
		case KindInt:
			s := int64(0)
			if ndv > 0 {
				s = src.Ints[ndv-1] + 1
				if s <= src.Ints[ndv-1] {
					return nil, fmt.Errorf("relation: cannot place a NULL sentinel above %d in column %q", src.Ints[ndv-1], name)
				}
			}
			out.Ints = append(out.Ints, s)
		case KindFloat:
			s := 0.0
			if ndv > 0 {
				mx := src.Floats[ndv-1]
				s = mx + 1
				if !(s > mx) {
					s = math.Nextafter(mx, math.MaxFloat64)
				}
				if !(s > mx) {
					return nil, fmt.Errorf("relation: cannot place a NULL sentinel above %g in column %q", mx, name)
				}
			}
			out.Floats = append(out.Floats, s)
		case KindString:
			s := ""
			if ndv > 0 {
				s = src.Strs[ndv-1] + "\x01"
			}
			out.Strs = append(out.Strs, s)
		}
	}
	null := int32(ndv)
	for i, a := range asg {
		if a[ti] < 0 {
			out.Codes[i] = null
		} else {
			out.Codes[i] = src.Codes[a[ti]]
		}
	}
	return out, nil
}

// MultiJoinCardinality returns the exact inner-join size of the graph
// without materializing it, by dynamic programming up the edge tree: each
// node aggregates, per join-key value, the number of inner-join combinations
// its subtree produces. It generalizes JoinCardinality to N-way joins and is
// the ground-truth oracle behind the registry's fanout correction.
func MultiJoinCardinality(g *JoinGraph) (int64, error) {
	tree, err := g.validate()
	if err != nil {
		return 0, err
	}
	// children[p] lists (child, colOnParent, colOnChild) in tree order;
	// processing tree edges in reverse visits every child before its parent.
	children := make([][]treeEdge, len(g.Tables))
	for _, te := range tree {
		children[te.parent] = append(children[te.parent], te)
	}
	// weight[c] maps a child's join-key value to the number of inner-join
	// combinations its subtree contributes for that key.
	weight := make([]map[string]int64, len(g.Tables))
	rowWeight := func(ti int, r int) int64 {
		w := int64(1)
		t := g.Tables[ti]
		for _, te := range children[ti] {
			key := t.Cols[te.parentCol].ValueString(t.Cols[te.parentCol].Codes[r])
			w *= weight[te.child][key]
			if w == 0 {
				return 0
			}
		}
		return w
	}
	for i := len(tree) - 1; i >= 0; i-- {
		te := tree[i]
		child := g.Tables[te.child]
		cc := child.Cols[te.childCol]
		m := make(map[string]int64, cc.NumDistinct())
		for r := 0; r < child.NumRows(); r++ {
			if w := rowWeight(te.child, r); w != 0 {
				m[cc.ValueString(cc.Codes[r])] += w
			}
		}
		weight[te.child] = m
	}
	var total int64
	for r := 0; r < g.Tables[0].NumRows(); r++ {
		total += rowWeight(0, r)
	}
	return total, nil
}
