package relation

import (
	"fmt"
	"testing"
)

func appendTestTable() *Table {
	return NewTable("t", []*Column{
		NewIntColumn("a", []int64{10, 20, 20, 40}),
		NewFloatColumn("f", []float64{1.5, 2.5, 2.5, 4}),
		NewStringColumn("s", []string{"x", "y", "y", "z"}),
	})
}

// rowValues renders row r as raw strings, the lossless comparison basis when
// dictionaries (and therefore codes) differ between tables.
func rowValues(t *Table, r int) []string {
	out := make([]string, t.NumCols())
	for i, c := range t.Cols {
		out[i] = c.ValueString(c.Codes.At(r))
	}
	return out
}

func TestAppendRowsNoFreshValues(t *testing.T) {
	base := appendTestTable()
	grown, err := AppendRows(base, [][]string{{"20", "1.5", "z"}, {"40", "4", "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if grown.NumRows() != 6 || base.NumRows() != 4 {
		t.Fatalf("rows: grown %d (want 6), base %d (want 4)", grown.NumRows(), base.NumRows())
	}
	for i := range base.Cols {
		if base.Cols[i].NumDistinct() != grown.Cols[i].NumDistinct() {
			t.Fatalf("column %d NDV changed without fresh values", i)
		}
		// Unchanged dictionaries are shared, not copied.
		switch base.Cols[i].Kind {
		case KindInt:
			if &base.Cols[i].Ints[0] != &grown.Cols[i].Ints[0] {
				t.Fatalf("column %d dictionary was copied needlessly", i)
			}
		}
	}
	want := [][]string{{"10", "1.5", "x"}, {"20", "2.5", "y"}, {"20", "2.5", "y"}, {"40", "4", "z"},
		{"20", "1.5", "z"}, {"40", "4", "x"}}
	for r := range want {
		if got := rowValues(grown, r); fmt.Sprint(got) != fmt.Sprint(want[r]) {
			t.Fatalf("row %d = %v, want %v", r, got, want[r])
		}
	}
}

func TestAppendRowsGrowsDictionaries(t *testing.T) {
	base := appendTestTable()
	baseRows := make([][]string, base.NumRows())
	for r := range baseRows {
		baseRows[r] = rowValues(base, r)
	}
	// 15 lands mid-dictionary for "a" (shifting codes of 20 and 40), 0.5 at
	// the front for "f", "zz" at the back for "s".
	grown, err := AppendRows(base, [][]string{{"15", "0.5", "zz"}, {"15", "2.5", "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := grown.Cols[0].NumDistinct(); got != 4 {
		t.Fatalf("a NDV = %d, want 4", got)
	}
	if got := grown.Cols[1].NumDistinct(); got != 4 {
		t.Fatalf("f NDV = %d, want 4", got)
	}
	if got := grown.Cols[2].NumDistinct(); got != 4 {
		t.Fatalf("s NDV = %d, want 4", got)
	}
	// Every pre-existing row keeps its values under the remapped codes, and
	// the input table is untouched.
	for r, want := range baseRows {
		if got := rowValues(grown, r); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("remapped row %d = %v, want %v", r, got, want)
		}
		if got := rowValues(base, r); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("input table mutated: row %d = %v, want %v", r, got, want)
		}
	}
	if got := rowValues(grown, 4); fmt.Sprint(got) != fmt.Sprint([]string{"15", "0.5", "zz"}) {
		t.Fatalf("appended row = %v", got)
	}
	// Dictionaries stay sorted (the repo-wide invariant codes rely on).
	for i := 1; i < len(grown.Cols[0].Ints); i++ {
		if grown.Cols[0].Ints[i-1] >= grown.Cols[0].Ints[i] {
			t.Fatalf("a dictionary not strictly sorted: %v", grown.Cols[0].Ints)
		}
	}
}

func TestAppendRowsErrors(t *testing.T) {
	base := appendTestTable()
	if _, err := AppendRows(base, [][]string{{"1", "2"}}); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := AppendRows(base, [][]string{{"notanint", "2.5", "x"}}); err == nil {
		t.Fatal("unparseable int accepted")
	}
	if _, err := AppendRows(base, [][]string{{"1", "notafloat", "x"}}); err == nil {
		t.Fatal("unparseable float accepted")
	}
	if got, err := AppendRows(base, nil); err != nil || got != base {
		t.Fatalf("empty append: got %v, %v", got, err)
	}
}

func TestCodeHistAndProjectValue(t *testing.T) {
	base := appendTestTable()
	h := base.CodeHist(0) // values 10,20,20,40 -> codes 0,1,1,2
	want := []float64{0.25, 0.5, 0.25}
	if len(h) != len(want) {
		t.Fatalf("hist len %d, want %d", len(h), len(want))
	}
	for i := range want {
		if diff := h[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("hist[%d] = %v, want %v", i, h[i], want[i])
		}
	}
	c := base.Cols[0]
	if code, exact, err := c.ProjectValue("20"); err != nil || !exact || code != 1 {
		t.Fatalf("ProjectValue(20) = %d,%v,%v", code, exact, err)
	}
	if code, exact, err := c.ProjectValue("25"); err != nil || exact || code != 2 {
		t.Fatalf("ProjectValue(25) = %d,%v,%v (want lower-bound 2, inexact)", code, exact, err)
	}
	if code, exact, err := c.ProjectValue("99"); err != nil || exact || code != 2 {
		t.Fatalf("ProjectValue(99) = %d,%v,%v (want clamp to last code)", code, exact, err)
	}
	if _, _, err := c.ProjectValue("nope"); err == nil {
		t.Fatal("unparseable value accepted")
	}
}
