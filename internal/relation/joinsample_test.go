package relation

import (
	"fmt"
	"math"
	"runtime"
	"testing"
)

// fojKey renders one view row's codes as a comparable key. Sampler draws and
// MultiJoin rows share dictionaries, so equal keys mean equal tuples.
func fojKey(codes []int32) string { return fmt.Sprint(codes) }

// fojHistogram counts each distinct code tuple of a materialized view.
func fojHistogram(view *Table) map[string]int {
	h := make(map[string]int, view.NumRows())
	row := make([]int32, view.NumCols())
	for r := 0; r < view.NumRows(); r++ {
		for c, col := range view.Cols {
			row[c] = col.Codes.At(r)
		}
		h[fojKey(row)]++
	}
	return h
}

// assertSameLayout verifies the sampler's table has exactly the column
// layout (names, kinds, dictionaries) MultiJoin materializes.
func assertSameLayout(t *testing.T, sampled, materialized *Table) {
	t.Helper()
	if sampled.NumCols() != materialized.NumCols() {
		t.Fatalf("sampled has %d columns, materialized %d", sampled.NumCols(), materialized.NumCols())
	}
	for i, sc := range sampled.Cols {
		mc := materialized.Cols[i]
		if sc.Name != mc.Name || sc.Kind != mc.Kind {
			t.Fatalf("column %d: sampled %s/%v, materialized %s/%v", i, sc.Name, sc.Kind, mc.Name, mc.Kind)
		}
		if sc.NumDistinct() != mc.NumDistinct() {
			t.Fatalf("column %q: sampled NDV %d, materialized NDV %d", sc.Name, sc.NumDistinct(), mc.NumDistinct())
		}
		for v := 0; v < sc.NumDistinct(); v++ {
			if sc.ValueString(int32(v)) != mc.ValueString(int32(v)) {
				t.Fatalf("column %q code %d: sampled value %q, materialized %q",
					sc.Name, v, sc.ValueString(int32(v)), mc.ValueString(int32(v)))
			}
		}
	}
}

func TestJoinSamplerLayoutMatchesMultiJoin(t *testing.T) {
	orders, customers, regions := chainTables()
	g := chainGraph(orders, customers, regions)
	view, err := MultiJoin("ocr", g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewJoinSampler(g, JoinSamplerConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Total(); got != int64(view.NumRows()) {
		t.Fatalf("sampler Total = %d, FOJ rows = %d", got, view.NumRows())
	}
	tbl, err := s.SampleTable("ocr_sample", 32)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLayout(t, tbl, view)

	// A fully matched graph (no dangling rows, every fanout 1) must produce
	// sentinel-free dictionaries, like MultiJoin.
	a := NewTable("a", []*Column{NewIntColumn("k", []int64{1, 2, 3}), NewIntColumn("x", []int64{5, 6, 7})})
	b := NewTable("b", []*Column{NewIntColumn("k", []int64{1, 2, 3}), NewIntColumn("y", []int64{8, 9, 8})})
	g2 := &JoinGraph{Tables: []*Table{a, b}, Edges: []JoinEdge{{"a", "k", "b", "k"}}}
	view2, err := MultiJoin("ab", g2)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewJoinSampler(g2, JoinSamplerConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tbl2, err := s2.SampleTable("ab_sample", 8)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLayout(t, tbl2, view2)
	if s2.Total() != int64(view2.NumRows()) {
		t.Fatalf("fully matched Total = %d, want %d", s2.Total(), view2.NumRows())
	}
}

// drawAndCheck draws n tuples, verifies every one is exactly a row of the
// materialized FOJ (codes, fanouts and NULL sentinels included), and returns
// the per-distinct-row observation counts.
func drawAndCheck(t *testing.T, s *JoinSampler, view *Table, n int) map[string]int {
	t.Helper()
	hist := fojHistogram(view)
	obs := make(map[string]int, len(hist))
	buf := make([]int32, s.NumCols())
	for i := 0; i < n; i++ {
		s.Draw(buf)
		k := fojKey(buf)
		if hist[k] == 0 {
			t.Fatalf("draw %d produced a tuple outside the FOJ: %v", i, buf)
		}
		obs[k]++
	}
	return obs
}

// chiSquare compares observed draw counts against the uniform-FOJ
// expectation and fails above the bound (deterministic: the sampler's RNG is
// seeded).
func chiSquare(t *testing.T, hist map[string]int, obs map[string]int, n, total int) {
	t.Helper()
	var chi2 float64
	for k, mult := range hist {
		exp := float64(n) * float64(mult) / float64(total)
		d := float64(obs[k]) - exp
		chi2 += d * d / exp
	}
	df := float64(len(hist) - 1)
	bound := df + 8*math.Sqrt(2*df) + 10
	if chi2 > bound {
		t.Fatalf("chi-square %.1f exceeds %.1f (df %.0f): sampler draws are not uniform over the FOJ", chi2, bound, df)
	}
	for k, mult := range hist {
		if obs[k] == 0 {
			t.Fatalf("FOJ row (multiplicity %d) never sampled in %d draws: %s", mult, n, k)
		}
	}
}

func TestJoinSamplerUnbiasedChain(t *testing.T) {
	orders, customers, regions := chainTables()
	g := chainGraph(orders, customers, regions)
	view, err := MultiJoin("ocr", g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewJoinSampler(g, JoinSamplerConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const n = 21000
	obs := drawAndCheck(t, s, view, n)
	chiSquare(t, fojHistogram(view), obs, n, view.NumRows())

	// Dangling-row correctness, spelled out: the dangling order (cust_id 5)
	// must be drawn with customers and regions absent — NULL sentinel codes
	// and zero fanouts — and the dangling region (id 12) alone with orders
	// and customers absent and its own fanout 1.
	tbl, err := s.SampleTable("chk", 4000)
	if err != nil {
		t.Fatal(err)
	}
	col := func(name string) *Column { return tbl.Cols[tbl.ColumnIndex(name)] }
	cust, fo, fc, fr := col("orders_cust_id"), col("__fanout_orders"), col("__fanout_customers"), col("__fanout_regions")
	cid, rid := col("customers_id"), col("regions_region_id")
	sawDanglingOrder, sawDanglingRegion := false, false
	for r := 0; r < tbl.NumRows(); r++ {
		if fo.Ints[fo.Codes.At(r)] == 1 && cust.Ints[cust.Codes.At(r)] == 5 {
			sawDanglingOrder = true
			if fc.Ints[fc.Codes.At(r)] != 0 || fr.Ints[fr.Codes.At(r)] != 0 {
				t.Fatalf("dangling order drawn with nonzero partner fanouts at row %d", r)
			}
			if int(cid.Codes.At(r)) != cid.NumDistinct()-1 {
				t.Fatalf("dangling order row %d lacks the customers_id NULL sentinel", r)
			}
		}
		if fr.Ints[fr.Codes.At(r)] == 1 && rid.Ints[rid.Codes.At(r)] == 12 {
			sawDanglingRegion = true
			if fo.Ints[fo.Codes.At(r)] != 0 || fc.Ints[fc.Codes.At(r)] != 0 {
				t.Fatalf("dangling region drawn with nonzero partner fanouts at row %d", r)
			}
		}
	}
	if !sawDanglingOrder || !sawDanglingRegion {
		t.Fatalf("dangling rows missing from 4000 draws: order=%v region=%v", sawDanglingOrder, sawDanglingRegion)
	}
}

func TestJoinSamplerUnbiasedStar(t *testing.T) {
	dimA := Generate(SynConfig{Name: "da", Rows: 18, Seed: 3, Cols: []ColSpec{
		{Name: "k", NDV: 12, Skew: 0.5, Parent: -1},
		{Name: "x", NDV: 5, Skew: 1.0, Parent: 0, Noise: 0.2},
	}})
	dimB := Generate(SynConfig{Name: "db", Rows: 15, Seed: 4, Cols: []ColSpec{
		{Name: "k", NDV: 10, Skew: 0.8, Parent: -1},
		{Name: "y", NDV: 4, Skew: 1.2, Parent: 0, Noise: 0.2},
	}})
	fact := Generate(SynConfig{Name: "fact", Rows: 40, Seed: 5, Cols: []ColSpec{
		{Name: "a_k", NDV: 14, Skew: 1.1, Parent: -1},
		{Name: "b_k", NDV: 12, Skew: 1.3, Parent: -1},
	}})
	g := &JoinGraph{
		Tables: []*Table{fact, dimA, dimB},
		Edges: []JoinEdge{
			{"fact", "a_k", "da", "k"},
			{"fact", "b_k", "db", "k"},
		},
	}
	view, err := MultiJoin("star", g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewJoinSampler(g, JoinSamplerConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if s.Total() != int64(view.NumRows()) {
		t.Fatalf("star Total = %d, FOJ rows = %d", s.Total(), view.NumRows())
	}
	n := 120 * view.NumRows()
	obs := drawAndCheck(t, s, view, n)
	chiSquare(t, fojHistogram(view), obs, n, view.NumRows())
}

// fanoutChain builds the a -> b -> c -> d chain whose FOJ size scales with
// dFanout while every base table keeps the same row count: c's join key
// cycles through 1800/dFanout distinct values, so each c row matches dFanout
// d rows.
func fanoutChain(dFanout int) *JoinGraph {
	const k, nb, nc = 200, 600, 1800
	seq := func(n, mod int) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(i % mod)
		}
		return out
	}
	a := NewTable("a", []*Column{NewIntColumn("ak", seq(k, k)), NewIntColumn("av", seq(k, 7))})
	b := NewTable("b", []*Column{NewIntColumn("ak", seq(nb, k)), NewIntColumn("bk", seq(nb, nb)), NewIntColumn("bv", seq(nb, 5))})
	c := NewTable("c", []*Column{NewIntColumn("bk", seq(nc, nb)), NewIntColumn("ck", seq(nc, nc/dFanout)), NewIntColumn("cv", seq(nc, 6))})
	d := NewTable("d", []*Column{NewIntColumn("ck", seq(nc, nc/dFanout)), NewIntColumn("dv", seq(nc, 9))})
	return &JoinGraph{
		Tables: []*Table{a, b, c, d},
		Edges: []JoinEdge{
			{"a", "ak", "b", "ak"},
			{"b", "bk", "c", "bk"},
			{"c", "ck", "d", "ck"},
		},
	}
}

// allocDelta measures the bytes allocated by f (TotalAlloc is monotonic, so
// the measurement is GC-independent).
func allocDelta(f func()) int64 {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	f()
	runtime.ReadMemStats(&m1)
	return int64(m1.TotalAlloc - m0.TotalAlloc)
}

// TestJoinSamplerConstantMemory is the scale-unlock property: growing the
// FOJ ~10x (same base tables, higher fanout) grows MultiJoin's allocations
// by roughly the same factor, while the sampler's stay roughly flat — its
// memory is O(base rows + budget), independent of join cardinality.
func TestJoinSamplerConstantMemory(t *testing.T) {
	small, big := fanoutChain(1), fanoutChain(10)
	smallCard, err := MultiJoinCardinality(small)
	if err != nil {
		t.Fatal(err)
	}
	bigCard, err := MultiJoinCardinality(big)
	if err != nil {
		t.Fatal(err)
	}
	if bigCard < 9*smallCard {
		t.Fatalf("fixture: big FOJ %d not ~10x small %d", bigCard, smallCard)
	}
	const budget = 2000
	sample := func(g *JoinGraph) int64 {
		return allocDelta(func() {
			s, err := NewJoinSampler(g, JoinSamplerConfig{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.SampleTable("s", budget); err != nil {
				t.Fatal(err)
			}
		})
	}
	materialize := func(g *JoinGraph) int64 {
		return allocDelta(func() {
			if _, err := MultiJoin("m", g); err != nil {
				t.Fatal(err)
			}
		})
	}
	sSmall, sBig := sample(small), sample(big)
	mSmall, mBig := materialize(small), materialize(big)
	t.Logf("alloc bytes: sampler %d -> %d, materialized %d -> %d (FOJ %d -> %d rows)",
		sSmall, sBig, mSmall, mBig, smallCard, bigCard)
	if sBig > 2*sSmall {
		t.Fatalf("sampler allocations grew %.1fx with the FOJ; want roughly flat", float64(sBig)/float64(sSmall))
	}
	if mBig < 4*mSmall {
		t.Fatalf("materialized allocations grew only %.1fx on a 10x FOJ; fixture no longer discriminates", float64(mBig)/float64(mSmall))
	}
	if sBig*4 > mBig {
		t.Fatalf("sampler (%d bytes) not clearly below materialization (%d bytes) on the big FOJ", sBig, mBig)
	}
}

// TestJoinIndexesShared: one JoinIndexes serves materialization, the exact
// DP and the sampler over the same base tables with identical results to the
// uncached paths.
func TestJoinIndexesShared(t *testing.T) {
	orders, customers, regions := chainTables()
	g := chainGraph(orders, customers, regions)
	ix := NewJoinIndexes()

	fresh, err := MultiJoin("v", g)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := MultiJoinIndexed("v", g, ix)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.NumRows() != cached.NumRows() || fresh.NumCols() != cached.NumCols() {
		t.Fatalf("indexed MultiJoin shape differs: %dx%d vs %dx%d",
			cached.NumRows(), cached.NumCols(), fresh.NumRows(), fresh.NumCols())
	}
	for c := range fresh.Cols {
		for r := 0; r < fresh.NumRows(); r++ {
			if fresh.Cols[c].Codes.At(r) != cached.Cols[c].Codes.At(r) {
				t.Fatalf("indexed MultiJoin differs at col %d row %d", c, r)
			}
		}
	}
	want, err := MultiJoinCardinality(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MultiJoinCardinalityIndexed(g, ix)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("indexed cardinality %d != %d", got, want)
	}
	// Subset graphs reuse the same cache (the registry's subtree anchors).
	sub := &JoinGraph{Tables: []*Table{customers, regions},
		Edges: []JoinEdge{{"customers", "region_id", "regions", "region_id"}}}
	subWant, err := MultiJoinCardinality(sub)
	if err != nil {
		t.Fatal(err)
	}
	subGot, err := MultiJoinCardinalityIndexed(sub, ix)
	if err != nil {
		t.Fatal(err)
	}
	if subGot != subWant {
		t.Fatalf("indexed subset cardinality %d != %d", subGot, subWant)
	}
	s, err := NewJoinSampler(g, JoinSamplerConfig{Seed: 3, Indexes: ix})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewJoinSampler(g, JoinSamplerConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := make([]int32, s.NumCols()), make([]int32, s2.NumCols())
	for i := 0; i < 200; i++ {
		s.Draw(b1)
		s2.Draw(b2)
		if fojKey(b1) != fojKey(b2) {
			t.Fatalf("cached-index sampler diverged from fresh at draw %d: %v vs %v", i, b1, b2)
		}
	}
}
