package relation

import (
	"fmt"
	"sort"
)

// EquiJoin materializes the inner equi-join of left and right on
// left.leftCol = right.rightCol (matching on raw values, not codes). Column
// names in the result are prefixed "l_" / "r_", and the join column appears
// once as "l_<name>".
//
// This is the substrate for join cardinality estimation in the style the
// paper inherits from NeuroCard: train the estimator over the (sampled) join
// result and answer join queries as single-table queries on it. NeuroCard's
// full outer join with fanout columns is future work; the inner join covers
// the common foreign-key case.
func EquiJoin(name string, left *Table, leftCol string, right *Table, rightCol string) (*Table, error) {
	li := left.ColumnIndex(leftCol)
	ri := right.ColumnIndex(rightCol)
	if li < 0 || ri < 0 {
		return nil, fmt.Errorf("relation: join columns %q/%q not found", leftCol, rightCol)
	}
	lc, rc := left.Cols[li], right.Cols[ri]
	if lc.Kind != rc.Kind {
		return nil, fmt.Errorf("relation: join column kinds differ: %v vs %v", lc.Kind, rc.Kind)
	}
	// Hash the right side by raw value key.
	rIndex := make(map[string][]int32, rc.NumDistinct())
	for r := 0; r < right.NumRows(); r++ {
		k := rc.ValueString(rc.Codes.At(r))
		rIndex[k] = append(rIndex[k], int32(r))
	}
	// Probe with the left side, collecting matched row pairs.
	var lRows, rRows []int32
	for l := 0; l < left.NumRows(); l++ {
		for _, r := range rIndex[lc.ValueString(lc.Codes.At(l))] {
			lRows = append(lRows, int32(l))
			rRows = append(rRows, r)
		}
	}
	// Materialize: gather columns from both sides.
	cols := make([]*Column, 0, left.NumCols()+right.NumCols()-1)
	for _, c := range left.Cols {
		cols = append(cols, gatherColumn("l_"+c.Name, c, lRows))
	}
	for i, c := range right.Cols {
		if i == ri {
			continue // join key already present as l_<leftCol>
		}
		cols = append(cols, gatherColumn("r_"+c.Name, c, rRows))
	}
	return NewTable(name, cols), nil
}

// gatherColumn projects src onto the given row indices, rebuilding a compact
// dictionary over the values that survive the join.
func gatherColumn(name string, src *Column, rows []int32) *Column {
	used := make([]bool, src.NumDistinct())
	for _, r := range rows {
		used[src.Codes.At(int(r))] = true
	}
	remap := make([]int32, src.NumDistinct())
	kept := 0
	for v := range used {
		if used[v] {
			remap[v] = int32(kept)
			kept++
		}
	}
	codes := make([]int32, len(rows))
	out := &Column{Name: name, Kind: src.Kind, Codes: I32Codes(codes)}
	switch src.Kind {
	case KindInt:
		out.Ints = make([]int64, 0, kept)
		for v, u := range used {
			if u {
				out.Ints = append(out.Ints, src.Ints[v])
			}
		}
	case KindFloat:
		out.Floats = make([]float64, 0, kept)
		for v, u := range used {
			if u {
				out.Floats = append(out.Floats, src.Floats[v])
			}
		}
	case KindString:
		out.Strs = make([]string, 0, kept)
		for v, u := range used {
			if u {
				out.Strs = append(out.Strs, src.Strs[v])
			}
		}
	}
	for i, r := range rows {
		codes[i] = remap[src.Codes.At(int(r))]
	}
	return out
}

// JoinCardinality returns the exact inner equi-join size without
// materializing it (a frequency dot-product over the shared value domain),
// useful for validating join estimates cheaply.
func JoinCardinality(left *Table, leftCol string, right *Table, rightCol string) (int64, error) {
	li := left.ColumnIndex(leftCol)
	ri := right.ColumnIndex(rightCol)
	if li < 0 || ri < 0 {
		return 0, fmt.Errorf("relation: join columns %q/%q not found", leftCol, rightCol)
	}
	lc, rc := left.Cols[li], right.Cols[ri]
	lf := map[string]int64{}
	for r := 0; r < lc.NumRows(); r++ {
		lf[lc.ValueString(lc.Codes.At(r))]++
	}
	var total int64
	rf := map[string]int64{}
	for r := 0; r < rc.NumRows(); r++ {
		rf[rc.ValueString(rc.Codes.At(r))]++
	}
	// Iterate the smaller map for the dot product.
	small, big := lf, rf
	if len(rf) < len(lf) {
		small, big = rf, lf
	}
	keys := make([]string, 0, len(small))
	for k := range small {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic accumulation order
	for _, k := range keys {
		total += small[k] * big[k]
	}
	return total, nil
}
