// Package relation provides the columnar relation substrate: dictionary-
// encoded columns, tables, CSV import/export, and synthetic dataset
// generators whose shapes (column count, NDV profile, skew, correlation)
// mirror the three datasets of the Duet paper (DMV, Kddcup98, Census).
//
// Every column stores its distinct values sorted ascending plus an int32
// code per row indexing into that dictionary. Because the dictionary is
// sorted, ordering comparisons on raw values become ordering comparisons on
// codes, and every range predicate compiles to a closed code interval — the
// representation all estimators in this repository consume.
package relation

import (
	"fmt"
	"sort"
	"strconv"
)

// Kind is the value type of a column.
type Kind uint8

// Column value kinds.
const (
	KindInt Kind = iota
	KindFloat
	KindString
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Column is a dictionary-encoded column. Exactly one of Ints, Floats, Strs
// is populated (matching Kind) and holds the sorted distinct values; Codes
// holds one index into the dictionary per row. Codes is an interface so the
// row storage can live either in an ordinary Go slice or inside a mapped
// .duetcol file (see CodeArray); in-memory encoders always produce I32Codes.
type Column struct {
	Name   string
	Kind   Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Codes  CodeArray

	// hist caches the normalized code-frequency histogram for columns whose
	// backing file stores it (colstore), so Table.CodeHist doesn't scan a
	// mapped code array and fault in every page. Nil for in-memory columns.
	hist []float64
}

// SetHist installs a precomputed code-frequency histogram (len == NDV);
// Table.CodeHist returns a copy of it instead of scanning the rows. The
// colstore loader uses this for mapped columns.
func (c *Column) SetHist(h []float64) { c.hist = h }

// NumDistinct returns the dictionary size (NDV).
func (c *Column) NumDistinct() int {
	switch c.Kind {
	case KindInt:
		return len(c.Ints)
	case KindFloat:
		return len(c.Floats)
	default:
		return len(c.Strs)
	}
}

// NumRows returns the number of rows.
func (c *Column) NumRows() int { return c.Codes.Len() }

// ValueString renders the distinct value at code as text.
func (c *Column) ValueString(code int32) string {
	switch c.Kind {
	case KindInt:
		return strconv.FormatInt(c.Ints[code], 10)
	case KindFloat:
		return strconv.FormatFloat(c.Floats[code], 'g', -1, 64)
	default:
		return c.Strs[code]
	}
}

// LowerBoundInt returns the smallest code whose value is >= v, or NDV when
// all values are smaller. For KindFloat columns v is compared as float64.
func (c *Column) LowerBoundInt(v int64) int32 {
	switch c.Kind {
	case KindInt:
		return int32(sort.Search(len(c.Ints), func(i int) bool { return c.Ints[i] >= v }))
	case KindFloat:
		return c.LowerBoundFloat(float64(v))
	default:
		panic("relation: LowerBoundInt on string column")
	}
}

// LowerBoundFloat returns the smallest code whose value is >= v.
func (c *Column) LowerBoundFloat(v float64) int32 {
	if c.Kind != KindFloat {
		panic("relation: LowerBoundFloat on non-float column")
	}
	return int32(sort.Search(len(c.Floats), func(i int) bool { return c.Floats[i] >= v }))
}

// LowerBoundString returns the smallest code whose value is >= v.
func (c *Column) LowerBoundString(v string) int32 {
	if c.Kind != KindString {
		panic("relation: LowerBoundString on non-string column")
	}
	return int32(sort.Search(len(c.Strs), func(i int) bool { return c.Strs[i] >= v }))
}

// CodeOfInt returns the code of value v and whether it is present exactly.
func (c *Column) CodeOfInt(v int64) (int32, bool) {
	lb := c.LowerBoundInt(v)
	if c.Kind == KindInt {
		return lb, int(lb) < len(c.Ints) && c.Ints[lb] == v
	}
	return lb, int(lb) < len(c.Floats) && c.Floats[lb] == float64(v)
}

// NewIntColumn dictionary-encodes raw int64 values.
func NewIntColumn(name string, values []int64) *Column {
	distinct := append([]int64(nil), values...)
	sort.Slice(distinct, func(i, j int) bool { return distinct[i] < distinct[j] })
	distinct = dedupInt64(distinct)
	codes := make([]int32, len(values))
	for i, v := range values {
		codes[i] = int32(sort.Search(len(distinct), func(k int) bool { return distinct[k] >= v }))
	}
	return &Column{Name: name, Kind: KindInt, Ints: distinct, Codes: I32Codes(codes)}
}

// NewFloatColumn dictionary-encodes raw float64 values.
func NewFloatColumn(name string, values []float64) *Column {
	distinct := append([]float64(nil), values...)
	sort.Float64s(distinct)
	distinct = dedupFloat64(distinct)
	codes := make([]int32, len(values))
	for i, v := range values {
		codes[i] = int32(sort.SearchFloat64s(distinct, v))
	}
	return &Column{Name: name, Kind: KindFloat, Floats: distinct, Codes: I32Codes(codes)}
}

// NewStringColumn dictionary-encodes raw string values, ordered
// lexicographically.
func NewStringColumn(name string, values []string) *Column {
	distinct := append([]string(nil), values...)
	sort.Strings(distinct)
	distinct = dedupString(distinct)
	codes := make([]int32, len(values))
	for i, v := range values {
		codes[i] = int32(sort.SearchStrings(distinct, v))
	}
	return &Column{Name: name, Kind: KindString, Strs: distinct, Codes: I32Codes(codes)}
}

// NewCodedColumn builds an int column directly from pre-computed codes over
// the domain 0..ndv-1 (value i is simply the integer i). Generators use this
// to avoid a redundant encode pass; codes must already lie in [0, ndv).
func NewCodedColumn(name string, codes []int32, ndv int) *Column {
	used := make([]bool, ndv)
	for _, c := range codes {
		used[c] = true
	}
	// Compact the dictionary to the codes actually present so NDV reflects
	// the realized data (mirrors what dictionary encoding of raw data does).
	remap := make([]int32, ndv)
	var distinct []int64
	for v := 0; v < ndv; v++ {
		if used[v] {
			remap[v] = int32(len(distinct))
			distinct = append(distinct, int64(v))
		}
	}
	out := make([]int32, len(codes))
	for i, c := range codes {
		out[i] = remap[c]
	}
	return &Column{Name: name, Kind: KindInt, Ints: distinct, Codes: I32Codes(out)}
}

func dedupInt64(s []int64) []int64 {
	if len(s) == 0 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func dedupFloat64(s []float64) []float64 {
	if len(s) == 0 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func dedupString(s []string) []string {
	if len(s) == 0 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
