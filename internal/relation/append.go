package relation

import (
	"cmp"
	"fmt"
	"slices"
	"strconv"
)

// AppendRows returns a new table extending t with the given rows. Each row
// carries one raw value per column (the CSV convention), parsed by the
// column's fixed kind — appending never re-infers kinds. The input table is
// NEVER mutated: a column whose dictionary already contains every appended
// value shares its dictionary slices with the result and only copies codes,
// while a column that sees fresh values gets a merged sorted dictionary with
// every existing code remapped to its new position.
//
// Copy-on-write is what makes online ingest safe under serving: a model
// answering requests against the old table (whose code space the new
// dictionary may have shifted) stays internally consistent until table and
// model are hot-swapped together (Registry.SwapModel) — the lifecycle
// subsystem's retrain path.
func AppendRows(t *Table, rows [][]string) (*Table, error) {
	if len(rows) == 0 {
		return t, nil
	}
	for ri, row := range rows {
		if len(row) != t.NumCols() {
			return nil, fmt.Errorf("relation: append row %d has %d values, table %q has %d columns",
				ri, len(row), t.Name, t.NumCols())
		}
	}
	cols := make([]*Column, t.NumCols())
	for ci, c := range t.Cols {
		nc, err := appendColumn(c, rows, ci)
		if err != nil {
			return nil, err
		}
		cols[ci] = nc
	}
	return NewTable(t.Name, cols), nil
}

// appendColumn parses column ci of every row by c's kind and returns a new
// column holding old rows + appended rows.
func appendColumn(c *Column, rows [][]string, ci int) (*Column, error) {
	n := len(rows)
	switch c.Kind {
	case KindInt:
		vals := make([]int64, n)
		for i, row := range rows {
			v, err := strconv.ParseInt(row[ci], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("relation: append: column %q is int, got %q", c.Name, row[ci])
			}
			vals[i] = v
		}
		dict, codes := extendDict(c.Ints, c.Codes, vals)
		return &Column{Name: c.Name, Kind: KindInt, Ints: dict, Codes: codes}, nil
	case KindFloat:
		vals := make([]float64, n)
		for i, row := range rows {
			v, err := strconv.ParseFloat(row[ci], 64)
			if err != nil {
				return nil, fmt.Errorf("relation: append: column %q is float, got %q", c.Name, row[ci])
			}
			vals[i] = v
		}
		dict, codes := extendDict(c.Floats, c.Codes, vals)
		return &Column{Name: c.Name, Kind: KindFloat, Floats: dict, Codes: codes}, nil
	default:
		vals := make([]string, n)
		for i, row := range rows {
			vals[i] = row[ci]
		}
		dict, codes := extendDict(c.Strs, c.Codes, vals)
		return &Column{Name: c.Name, Kind: KindString, Strs: dict, Codes: codes}, nil
	}
}

// extendDict merges appended values into a sorted dictionary and produces the
// full code column (old rows remapped + appended rows encoded). When no value
// is fresh the input dictionary is returned as-is, so the caller can share it.
func extendDict[V cmp.Ordered](dict []V, oldCodes []int32, vals []V) ([]V, []int32) {
	var fresh []V
	for _, v := range vals {
		if _, ok := slices.BinarySearch(dict, v); !ok {
			fresh = append(fresh, v)
		}
	}
	codes := make([]int32, len(oldCodes)+len(vals))
	if len(fresh) == 0 {
		copy(codes, oldCodes)
		for i, v := range vals {
			j, _ := slices.BinarySearch(dict, v)
			codes[len(oldCodes)+i] = int32(j)
		}
		return dict, codes
	}
	slices.Sort(fresh)
	fresh = slices.Compact(fresh)
	merged := make([]V, 0, len(dict)+len(fresh))
	remap := make([]int32, len(dict))
	i, j := 0, 0
	for i < len(dict) || j < len(fresh) {
		// Fresh values are absent from dict, so the two runs never tie.
		if j >= len(fresh) || (i < len(dict) && dict[i] < fresh[j]) {
			remap[i] = int32(len(merged))
			merged = append(merged, dict[i])
			i++
		} else {
			merged = append(merged, fresh[j])
			j++
		}
	}
	for k, oc := range oldCodes {
		codes[k] = remap[oc]
	}
	for k, v := range vals {
		j, _ := slices.BinarySearch(merged, v)
		codes[len(oldCodes)+k] = int32(j)
	}
	return merged, codes
}

// CodeHist returns column ci's normalized code-frequency histogram — the
// per-column distribution snapshot that drift detection compares appended
// rows against (total-variation distance between a trained snapshot's
// histogram and the appended rows projected onto the same dictionary).
func (t *Table) CodeHist(ci int) []float64 {
	c := t.Cols[ci]
	h := make([]float64, c.NumDistinct())
	inv := 1 / float64(len(c.Codes))
	for _, code := range c.Codes {
		h[code] += inv
	}
	return h
}

// ProjectValue maps a raw value onto the column's dictionary with lower-bound
// semantics, clamped to the last code, and reports whether the value is
// present exactly. Values outside the trained domain land in the nearest bin,
// which is exactly what projecting appended rows onto a trained snapshot's
// histogram needs; exact=false marks a value that would grow the dictionary.
func (c *Column) ProjectValue(raw string) (code int32, exact bool, err error) {
	var lb int32
	switch c.Kind {
	case KindInt:
		v, perr := strconv.ParseInt(raw, 10, 64)
		if perr != nil {
			return 0, false, fmt.Errorf("relation: column %q is int, got %q", c.Name, raw)
		}
		lb = c.LowerBoundInt(v)
		exact = int(lb) < len(c.Ints) && c.Ints[lb] == v
	case KindFloat:
		v, perr := strconv.ParseFloat(raw, 64)
		if perr != nil {
			return 0, false, fmt.Errorf("relation: column %q is float, got %q", c.Name, raw)
		}
		lb = c.LowerBoundFloat(v)
		exact = int(lb) < len(c.Floats) && c.Floats[lb] == v
	default:
		lb = c.LowerBoundString(raw)
		exact = int(lb) < len(c.Strs) && c.Strs[lb] == raw
	}
	if int(lb) >= c.NumDistinct() {
		lb = int32(c.NumDistinct()) - 1
	}
	return lb, exact, nil
}
