package relation

import (
	"cmp"
	"fmt"
	"slices"
	"strconv"
)

// AppendRows returns a new table extending t with the given rows. Each row
// carries one raw value per column (the CSV convention), parsed by the
// column's fixed kind — appending never re-infers kinds. The input table is
// NEVER mutated: a column whose dictionary already contains every appended
// value shares its dictionary slices with the result and only copies codes,
// while a column that sees fresh values gets a merged sorted dictionary with
// every existing code remapped to its new position.
//
// Copy-on-write is what makes online ingest safe under serving: a model
// answering requests against the old table (whose code space the new
// dictionary may have shifted) stays internally consistent until table and
// model are hot-swapped together (Registry.SwapModel) — the lifecycle
// subsystem's retrain path.
func AppendRows(t *Table, rows [][]string) (*Table, error) {
	if len(rows) == 0 {
		return t, nil
	}
	for ri, row := range rows {
		if len(row) != t.NumCols() {
			return nil, fmt.Errorf("relation: append row %d has %d values, table %q has %d columns",
				ri, len(row), t.Name, t.NumCols())
		}
	}
	cols := make([]*Column, t.NumCols())
	for ci, c := range t.Cols {
		nc, err := appendColumn(c, rows, ci)
		if err != nil {
			return nil, err
		}
		cols[ci] = nc
	}
	return NewTable(t.Name, cols), nil
}

// appendColumn parses column ci of every row by c's kind and returns a new
// column holding old rows + appended rows. In-memory columns (I32Codes) get
// a fully materialized code array; any other backing — a mapped .duetcol
// column or an existing tail — gets a TailCodes overlay instead, so the
// (possibly beyond-RAM) base is never copied or rewritten by ingest.
func appendColumn(c *Column, rows [][]string, ci int) (*Column, error) {
	n := len(rows)
	_, inMem := c.Codes.(I32Codes)
	switch c.Kind {
	case KindInt:
		vals := make([]int64, n)
		for i, row := range rows {
			v, err := strconv.ParseInt(row[ci], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("relation: append: column %q is int, got %q", c.Name, row[ci])
			}
			vals[i] = v
		}
		if !inMem {
			dict, codes := appendTail(c, c.Ints, vals)
			return &Column{Name: c.Name, Kind: KindInt, Ints: dict, Codes: codes}, nil
		}
		dict, codes := extendDict(c.Ints, c.Codes, vals)
		return &Column{Name: c.Name, Kind: KindInt, Ints: dict, Codes: I32Codes(codes)}, nil
	case KindFloat:
		vals := make([]float64, n)
		for i, row := range rows {
			v, err := strconv.ParseFloat(row[ci], 64)
			if err != nil {
				return nil, fmt.Errorf("relation: append: column %q is float, got %q", c.Name, row[ci])
			}
			vals[i] = v
		}
		if !inMem {
			dict, codes := appendTail(c, c.Floats, vals)
			return &Column{Name: c.Name, Kind: KindFloat, Floats: dict, Codes: codes}, nil
		}
		dict, codes := extendDict(c.Floats, c.Codes, vals)
		return &Column{Name: c.Name, Kind: KindFloat, Floats: dict, Codes: I32Codes(codes)}, nil
	default:
		vals := make([]string, n)
		for i, row := range rows {
			vals[i] = row[ci]
		}
		if !inMem {
			dict, codes := appendTail(c, c.Strs, vals)
			return &Column{Name: c.Name, Kind: KindString, Strs: dict, Codes: codes}, nil
		}
		dict, codes := extendDict(c.Strs, c.Codes, vals)
		return &Column{Name: c.Name, Kind: KindString, Strs: dict, Codes: I32Codes(codes)}, nil
	}
}

// appendTail extends a non-materializable column (mapped base, or base +
// existing tail) with vals. Dictionary growth becomes a remap indirection
// over the immutable base codes instead of a rewrite, and successive appends
// flatten into one TailCodes (base + composed remap + merged tail) so read
// cost never grows with ingest-batch count. The input column is never
// mutated — readers holding the old table keep a consistent view.
func appendTail[V cmp.Ordered](c *Column, dict []V, vals []V) ([]V, CodeArray) {
	merged, remap := mergeFresh(dict, vals)
	base := c.Codes
	var baseRemap, oldTail []int32
	if tc, ok := c.Codes.(*TailCodes); ok {
		base, baseRemap, oldTail = tc.Base, tc.Remap, tc.Tail
	}
	newRemap := baseRemap
	if remap != nil {
		if baseRemap == nil {
			newRemap = remap
		} else {
			newRemap = make([]int32, len(baseRemap))
			for i, r := range baseRemap {
				newRemap[i] = remap[r]
			}
		}
	}
	tail := make([]int32, 0, len(oldTail)+len(vals))
	for _, code := range oldTail {
		if remap != nil {
			code = remap[code]
		}
		tail = append(tail, code)
	}
	for _, v := range vals {
		j, _ := slices.BinarySearch(merged, v)
		tail = append(tail, int32(j))
	}
	return merged, &TailCodes{Base: base, Remap: newRemap, Tail: tail}
}

// extendDict merges appended values into a sorted dictionary and produces the
// full code column (old rows remapped + appended rows encoded). When no value
// is fresh the input dictionary is returned as-is, so the caller can share it.
func extendDict[V cmp.Ordered](dict []V, oldCodes CodeArray, vals []V) ([]V, []int32) {
	merged, remap := mergeFresh(dict, vals)
	old := oldCodes.Len()
	codes := make([]int32, 0, old+len(vals))
	codes = oldCodes.AppendTo(codes, 0, old)
	if remap != nil {
		for k, oc := range codes {
			codes[k] = remap[oc]
		}
	}
	for _, v := range vals {
		j, _ := slices.BinarySearch(merged, v)
		codes = append(codes, int32(j))
	}
	return merged, codes
}

// mergeFresh merges any values absent from the sorted dictionary into it and
// returns the merged dictionary plus the old-code → merged-code translation
// (nil when nothing was fresh, in which case dict is returned as-is so the
// caller can share it). It is the dictionary-growth primitive behind both the
// materializing extendDict and the mapped-base append tail, which keeps the
// remap as an indirection instead of rewriting base codes.
func mergeFresh[V cmp.Ordered](dict []V, vals []V) ([]V, []int32) {
	var fresh []V
	for _, v := range vals {
		if _, ok := slices.BinarySearch(dict, v); !ok {
			fresh = append(fresh, v)
		}
	}
	if len(fresh) == 0 {
		return dict, nil
	}
	slices.Sort(fresh)
	fresh = slices.Compact(fresh)
	merged := make([]V, 0, len(dict)+len(fresh))
	remap := make([]int32, len(dict))
	i, j := 0, 0
	for i < len(dict) || j < len(fresh) {
		// Fresh values are absent from dict, so the two runs never tie.
		if j >= len(fresh) || (i < len(dict) && dict[i] < fresh[j]) {
			remap[i] = int32(len(merged))
			merged = append(merged, dict[i])
			i++
		} else {
			merged = append(merged, fresh[j])
			j++
		}
	}
	return merged, remap
}

// CodeHist returns column ci's normalized code-frequency histogram — the
// per-column distribution snapshot that drift detection compares appended
// rows against (total-variation distance between a trained snapshot's
// histogram and the appended rows projected onto the same dictionary).
func (t *Table) CodeHist(ci int) []float64 {
	c := t.Cols[ci]
	h := make([]float64, c.NumDistinct())
	if c.hist != nil && len(c.hist) == len(h) {
		// Mapped columns carry the histogram computed at pack time; returning
		// a copy avoids faulting in the whole code array just to re-count it.
		copy(h, c.hist)
		return h
	}
	n := c.Codes.Len()
	inv := 1 / float64(n)
	var buf [4096]int32
	for lo := 0; lo < n; lo += len(buf) {
		hi := min(lo+len(buf), n)
		for _, code := range c.Codes.AppendTo(buf[:0], lo, hi) {
			h[code] += inv
		}
	}
	return h
}

// ProjectValue maps a raw value onto the column's dictionary with lower-bound
// semantics, clamped to the last code, and reports whether the value is
// present exactly. Values outside the trained domain land in the nearest bin,
// which is exactly what projecting appended rows onto a trained snapshot's
// histogram needs; exact=false marks a value that would grow the dictionary.
func (c *Column) ProjectValue(raw string) (code int32, exact bool, err error) {
	var lb int32
	switch c.Kind {
	case KindInt:
		v, perr := strconv.ParseInt(raw, 10, 64)
		if perr != nil {
			return 0, false, fmt.Errorf("relation: column %q is int, got %q", c.Name, raw)
		}
		lb = c.LowerBoundInt(v)
		exact = int(lb) < len(c.Ints) && c.Ints[lb] == v
	case KindFloat:
		v, perr := strconv.ParseFloat(raw, 64)
		if perr != nil {
			return 0, false, fmt.Errorf("relation: column %q is float, got %q", c.Name, raw)
		}
		lb = c.LowerBoundFloat(v)
		exact = int(lb) < len(c.Floats) && c.Floats[lb] == v
	default:
		lb = c.LowerBoundString(raw)
		exact = int(lb) < len(c.Strs) && c.Strs[lb] == raw
	}
	if int(lb) >= c.NumDistinct() {
		lb = int32(c.NumDistinct()) - 1
	}
	return lb, exact, nil
}
