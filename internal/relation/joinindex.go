package relation

import (
	"cmp"
	"fmt"
	"sync"
)

// EdgeIndex is the code-level machinery of one equi-join edge between two
// dictionary-encoded columns of the same Kind. Because both dictionaries are
// sorted, equality of raw values reduces to a translation array between the
// two code spaces (built by one merge pass, no hashing), and the rows of each
// side grouped by their own code (a CSR layout) are the edge's hash index:
// the matches of a row on one side are the other side's group at the
// translated code. MultiJoin, MultiJoinCardinality and JoinSampler all
// consume the same index, so a graph's edges are indexed once and reused
// across materialization, exact-cardinality anchors and sampling.
type EdgeIndex struct {
	side [2]edgeSide
}

// edgeSide is one column's half of an EdgeIndex.
type edgeSide struct {
	tbl string // owning table name; orients cached indexes (edges never self-join)
	col *Column
	// toOther maps an own dictionary code to the other side's code for the
	// same raw value, -1 when the value is absent there. A row whose join-key
	// code translates to -1 has no match (on the child side of a tree edge,
	// that makes it a dangling row the full outer join preserves alone).
	toOther []int32
	// start/rows group this side's row ids by their own code: rows of code c
	// are rows[start[c]:start[c+1]], ascending. len(start) = NDV+1.
	start []int32
	rows  []int32
}

// newEdgeIndex builds the index for one edge; a and b must have equal kinds
// (the graph validator enforces this before any index is built).
func newEdgeIndex(aTbl string, a *Column, bTbl string, b *Column) *EdgeIndex {
	ix := &EdgeIndex{}
	ix.side[0].tbl, ix.side[1].tbl = aTbl, bTbl
	ix.side[0].col, ix.side[1].col = a, b
	ix.side[0].toOther, ix.side[1].toOther = mergeDicts(a, b)
	for s := range ix.side {
		ix.side[s].start, ix.side[s].rows = groupByCode(ix.side[s].col)
	}
	return ix
}

// oriented views an EdgeIndex from a tree edge's parent toward its child.
type oriented struct {
	parent, child *edgeSide
}

// orient returns the edge viewed with the given table's side as the parent.
func (ix *EdgeIndex) orient(parentTbl string) oriented {
	if ix.side[0].tbl == parentTbl {
		return oriented{parent: &ix.side[0], child: &ix.side[1]}
	}
	return oriented{parent: &ix.side[1], child: &ix.side[0]}
}

// childCode translates a parent-side code to the child-side code of the same
// value, -1 when the child dictionary lacks it (no matches).
func (o oriented) childCode(parentCode int32) int32 { return o.parent.toOther[parentCode] }

// matches returns the child rows carrying the given child-side code.
func (o oriented) matches(childCode int32) []int32 {
	return o.child.rows[o.child.start[childCode]:o.child.start[childCode+1]]
}

// groupSize returns the number of child rows carrying the given code — the
// fanout every matched view row records for the child table.
func (o oriented) groupSize(childCode int32) int32 {
	return o.child.start[childCode+1] - o.child.start[childCode]
}

// dangling reports whether a child row with the given code has no parent
// anywhere in the parent base table.
func (o oriented) dangling(childCode int32) bool { return o.child.toOther[childCode] < 0 }

// mergeDicts walks both sorted dictionaries once and returns the two
// translation arrays (a code -> b code and b code -> a code, -1 when the
// value is absent on the other side).
func mergeDicts(a, b *Column) (aToB, bToA []int32) {
	na, nb := a.NumDistinct(), b.NumDistinct()
	aToB = make([]int32, na)
	bToA = make([]int32, nb)
	for i := range aToB {
		aToB[i] = -1
	}
	for j := range bToA {
		bToA[j] = -1
	}
	i, j := 0, 0
	for i < na && j < nb {
		switch dictCompare(a, i, b, j) {
		case -1:
			i++
		case 1:
			j++
		default:
			aToB[i], bToA[j] = int32(j), int32(i)
			i++
			j++
		}
	}
	return aToB, bToA
}

// dictCompare orders dictionary entry i of a against entry j of b (-1/0/1).
func dictCompare(a *Column, i int, b *Column, j int) int {
	switch a.Kind {
	case KindInt:
		return cmp.Compare(a.Ints[i], b.Ints[j])
	case KindFloat:
		return cmp.Compare(a.Floats[i], b.Floats[j])
	default:
		return cmp.Compare(a.Strs[i], b.Strs[j])
	}
}

// groupByCode builds the CSR grouping of a column's rows by code with one
// counting pass.
func groupByCode(c *Column) (start, rows []int32) {
	ndv := c.NumDistinct()
	n := c.Codes.Len()
	start = make([]int32, ndv+1)
	// Bulk-decode in chunks: on a mapped column this streams the code pages
	// once per pass instead of paying an interface call per row.
	var buf [4096]int32
	for lo := 0; lo < n; lo += len(buf) {
		for _, code := range c.Codes.AppendTo(buf[:0], lo, min(lo+len(buf), n)) {
			start[code+1]++
		}
	}
	for i := 0; i < ndv; i++ {
		start[i+1] += start[i]
	}
	rows = make([]int32, n)
	next := make([]int32, ndv)
	copy(next, start[:ndv])
	r := 0
	for lo := 0; lo < n; lo += len(buf) {
		for _, code := range c.Codes.AppendTo(buf[:0], lo, min(lo+len(buf), n)) {
			rows[next[code]] = int32(r)
			next[code]++
			r++
		}
	}
	return start, rows
}

// JoinIndexes caches EdgeIndex values per equi-join edge so repeated
// operations over the same base tables (materialization, the registry's
// exact subtree anchors, sampling) index each edge once. The cache is keyed
// orientation-insensitively by table and column names. Safe for concurrent
// use; the zero value is not valid, use NewJoinIndexes.
type JoinIndexes struct {
	mu    sync.Mutex
	byKey map[string]*EdgeIndex
}

// NewJoinIndexes returns an empty edge-index cache.
func NewJoinIndexes() *JoinIndexes {
	return &JoinIndexes{byKey: make(map[string]*EdgeIndex)}
}

// edge returns the cached index for the edge between pt's column pc and ct's
// column cc, building and caching it on first use. A nil receiver builds a
// fresh uncached index (the one-shot path).
func (ix *JoinIndexes) edge(pt *Table, pc int, ct *Table, cc int) *EdgeIndex {
	if ix == nil {
		return newEdgeIndex(pt.Name, pt.Cols[pc], ct.Name, ct.Cols[cc])
	}
	ka := fmt.Sprintf("%s\x00%s", pt.Name, pt.Cols[pc].Name)
	kb := fmt.Sprintf("%s\x00%s", ct.Name, ct.Cols[cc].Name)
	if kb < ka {
		ka, kb = kb, ka
	}
	key := ka + "\x01" + kb
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if e, ok := ix.byKey[key]; ok {
		return e
	}
	e := newEdgeIndex(pt.Name, pt.Cols[pc], ct.Name, ct.Cols[cc])
	ix.byKey[key] = e
	return e
}

// orientedFor resolves the oriented view of one validated tree edge.
func (ix *JoinIndexes) orientedFor(g *JoinGraph, te treeEdge) oriented {
	parent, child := g.Tables[te.parent], g.Tables[te.child]
	return ix.edge(parent, te.parentCol, child, te.childCol).orient(parent.Name)
}
