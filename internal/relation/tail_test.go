package relation

import (
	"fmt"
	"testing"
)

// widthTable builds a table whose columns are backed by non-I32 code arrays,
// standing in for a mapped .duetcol base.
func widthTable() *Table {
	// a: ints 10,20,30 with u8 codes; s: strings with u8 codes.
	a := &Column{Name: "a", Kind: KindInt, Ints: []int64{10, 20, 30},
		Codes: U8Codes{0, 1, 2, 1, 0}}
	s := &Column{Name: "s", Kind: KindString, Strs: []string{"x", "y"},
		Codes: U16Codes{0, 1, 1, 0, 1}}
	return NewTable("base", []*Column{a, s})
}

func TestAppendRowsBuildsTailOverMappedBase(t *testing.T) {
	base := widthTable()
	grown, err := AppendRows(base, [][]string{{"20", "y"}, {"25", "z"}})
	if err != nil {
		t.Fatal(err)
	}
	if grown.NumRows() != 7 {
		t.Fatalf("rows = %d, want 7", grown.NumRows())
	}
	// The base table must be untouched (copy-on-write) and still width-coded.
	if _, ok := base.Cols[0].Codes.(U8Codes); !ok || base.NumRows() != 5 {
		t.Fatalf("base mutated: %T, %d rows", base.Cols[0].Codes, base.NumRows())
	}
	// The grown columns must be tails over the same base array, not copies.
	tc, ok := grown.Cols[0].Codes.(*TailCodes)
	if !ok {
		t.Fatalf("grown int column is %T, want *TailCodes", grown.Cols[0].Codes)
	}
	if _, ok := tc.Base.(U8Codes); !ok {
		t.Fatalf("tail base is %T, want the original U8Codes", tc.Base)
	}
	// "25" grew the int dictionary: 10,20,25,30. Base codes must read through
	// the remap; appended rows land in the merged space.
	wantInts := []int64{10, 20, 30, 20, 10, 20, 25}
	for r, w := range wantInts {
		c := grown.Cols[0]
		if got := c.Ints[c.Codes.At(r)]; got != w {
			t.Fatalf("row %d int = %d, want %d", r, got, w)
		}
	}
	wantStrs := []string{"x", "y", "y", "x", "y", "y", "z"}
	for r, w := range wantStrs {
		c := grown.Cols[1]
		if got := c.Strs[c.Codes.At(r)]; got != w {
			t.Fatalf("row %d str = %q, want %q", r, got, w)
		}
	}
}

func TestAppendRowsTailFlattens(t *testing.T) {
	tbl := widthTable()
	// Ten successive ingest batches must not nest TailCodes: read cost stays
	// one remap lookup regardless of batch count.
	for i := 0; i < 10; i++ {
		var err error
		tbl, err = AppendRows(tbl, [][]string{{fmt.Sprintf("%d", 100+i), "y"}})
		if err != nil {
			t.Fatal(err)
		}
	}
	tc, ok := tbl.Cols[0].Codes.(*TailCodes)
	if !ok {
		t.Fatalf("column is %T, want *TailCodes", tbl.Cols[0].Codes)
	}
	if _, nested := tc.Base.(*TailCodes); nested {
		t.Fatal("TailCodes nested instead of flattening")
	}
	if tbl.NumRows() != 15 || len(tc.Tail) != 10 {
		t.Fatalf("rows=%d tail=%d, want 15/10", tbl.NumRows(), len(tc.Tail))
	}
	// Every appended value present, in order, through the merged dictionary.
	for i := 0; i < 10; i++ {
		c := tbl.Cols[0]
		if got := c.Ints[c.Codes.At(5+i)]; got != int64(100+i) {
			t.Fatalf("appended row %d = %d, want %d", i, got, 100+i)
		}
	}
	// AppendTo bulk decode agrees with At across the base/tail boundary.
	all := tbl.Cols[0].Codes.AppendTo(nil, 0, tbl.NumRows())
	for r, code := range all {
		if code != tbl.Cols[0].Codes.At(r) {
			t.Fatalf("AppendTo[%d]=%d, At=%d", r, code, tbl.Cols[0].Codes.At(r))
		}
	}
	// Histogram over the tail-backed column still sums to 1.
	var sum float64
	for _, h := range tbl.CodeHist(0) {
		sum += h
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("CodeHist sum = %g", sum)
	}
}
