package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// LoadCSV reads a CSV stream into a dictionary-encoded table. When header is
// true the first record names the columns; otherwise columns are named
// col0..colN-1. Column kinds are inferred: a column where every value parses
// as int64 becomes KindInt, else float64 → KindFloat, else KindString.
func LoadCSV(r io.Reader, name string, header bool) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: empty csv")
	}
	var names []string
	if header {
		names = records[0]
		records = records[1:]
	} else {
		names = make([]string, len(records[0]))
		for i := range names {
			names[i] = fmt.Sprintf("col%d", i)
		}
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: csv has a header but no rows")
	}
	ncols := len(names)
	raw := make([][]string, ncols)
	for i := range raw {
		raw[i] = make([]string, len(records))
	}
	for ri, rec := range records {
		if len(rec) != ncols {
			return nil, fmt.Errorf("relation: row %d has %d fields, expected %d", ri, len(rec), ncols)
		}
		for ci, v := range rec {
			raw[ci][ri] = v
		}
	}
	cols := make([]*Column, ncols)
	for ci, vals := range raw {
		cols[ci] = inferColumn(names[ci], vals)
	}
	return NewTable(name, cols), nil
}

func inferColumn(name string, vals []string) *Column {
	ints := make([]int64, len(vals))
	allInt := true
	for i, v := range vals {
		x, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			allInt = false
			break
		}
		ints[i] = x
	}
	if allInt {
		return NewIntColumn(name, ints)
	}
	floats := make([]float64, len(vals))
	allFloat := true
	for i, v := range vals {
		x, err := strconv.ParseFloat(v, 64)
		if err != nil {
			allFloat = false
			break
		}
		floats[i] = x
	}
	if allFloat {
		return NewFloatColumn(name, floats)
	}
	return NewStringColumn(name, vals)
}

// WriteCSV writes the table with a header row.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(t.Cols))
	for r := 0; r < t.NumRows(); r++ {
		for i, c := range t.Cols {
			rec[i] = c.ValueString(c.Codes.At(r))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
