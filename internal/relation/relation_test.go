package relation

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestIntColumnDictionary(t *testing.T) {
	c := NewIntColumn("x", []int64{5, 3, 5, 9, 3, 3})
	if c.NumDistinct() != 3 {
		t.Fatalf("NDV=%d want 3", c.NumDistinct())
	}
	want := []int64{3, 5, 9}
	for i, v := range want {
		if c.Ints[i] != v {
			t.Fatalf("dict=%v want %v", c.Ints, want)
		}
	}
	// Codes decode back to original values.
	orig := []int64{5, 3, 5, 9, 3, 3}
	for i, code := range DecodeCodes(c.Codes) {
		if c.Ints[code] != orig[i] {
			t.Fatalf("row %d decodes to %d want %d", i, c.Ints[code], orig[i])
		}
	}
}

func TestDictionaryRoundtripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		c := NewIntColumn("x", vals)
		for i, code := range DecodeCodes(c.Codes) {
			if c.Ints[code] != vals[i] {
				return false
			}
		}
		// Dictionary strictly ascending.
		for i := 1; i < len(c.Ints); i++ {
			if c.Ints[i] <= c.Ints[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatAndStringColumns(t *testing.T) {
	fc := NewFloatColumn("f", []float64{1.5, -2, 1.5})
	if fc.NumDistinct() != 2 || fc.Floats[0] != -2 {
		t.Fatalf("float dict %v", fc.Floats)
	}
	sc := NewStringColumn("s", []string{"b", "a", "b", "c"})
	if sc.NumDistinct() != 3 || sc.Strs[0] != "a" {
		t.Fatalf("string dict %v", sc.Strs)
	}
	if sc.ValueString(sc.Codes.At(0)) != "b" {
		t.Fatal("ValueString mismatch")
	}
}

func TestLowerBound(t *testing.T) {
	c := NewIntColumn("x", []int64{10, 20, 30})
	cases := []struct {
		v    int64
		want int32
	}{{5, 0}, {10, 0}, {15, 1}, {30, 2}, {31, 3}}
	for _, tc := range cases {
		if got := c.LowerBoundInt(tc.v); got != tc.want {
			t.Fatalf("LowerBoundInt(%d)=%d want %d", tc.v, got, tc.want)
		}
	}
	if code, ok := c.CodeOfInt(20); !ok || code != 1 {
		t.Fatalf("CodeOfInt(20)=(%d,%v)", code, ok)
	}
	if _, ok := c.CodeOfInt(25); ok {
		t.Fatal("CodeOfInt(25) should not be exact")
	}
}

func TestNewCodedColumnCompacts(t *testing.T) {
	// Codes 0 and 5 used out of domain 10 -> NDV 2, values preserved as ints.
	c := NewCodedColumn("x", []int32{5, 0, 5}, 10)
	if c.NumDistinct() != 2 {
		t.Fatalf("NDV=%d want 2", c.NumDistinct())
	}
	if c.Ints[0] != 0 || c.Ints[1] != 5 {
		t.Fatalf("dict=%v", c.Ints)
	}
	if c.Codes.At(0) != 1 || c.Codes.At(1) != 0 {
		t.Fatalf("codes=%v", c.Codes)
	}
}

func TestTableValidation(t *testing.T) {
	a := NewIntColumn("a", []int64{1, 2})
	b := NewIntColumn("b", []int64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged columns")
		}
	}()
	NewTable("t", []*Column{a, b})
}

func TestTableAccessors(t *testing.T) {
	tbl := NewTable("t", []*Column{
		NewIntColumn("a", []int64{1, 2, 1}),
		NewIntColumn("b", []int64{7, 7, 8}),
	})
	if tbl.NumRows() != 3 || tbl.NumCols() != 2 {
		t.Fatalf("shape %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	row := tbl.RowCodes(2, nil)
	if tbl.Cols[0].Ints[row[0]] != 1 || tbl.Cols[1].Ints[row[1]] != 8 {
		t.Fatalf("row decode %v", row)
	}
	if tbl.ColumnIndex("b") != 1 || tbl.ColumnIndex("zz") != -1 {
		t.Fatal("ColumnIndex")
	}
	if ndvs := tbl.NDVs(); ndvs[0] != 2 || ndvs[1] != 2 {
		t.Fatalf("NDVs %v", ndvs)
	}
	if !strings.Contains(tbl.Stats(), "3 rows") {
		t.Fatalf("Stats: %s", tbl.Stats())
	}
}

func TestCSVRoundtrip(t *testing.T) {
	in := "a,b,c\n1,2.5,x\n3,1.5,y\n1,2.5,x\n"
	tbl, err := LoadCSV(strings.NewReader(in), "t", true)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Cols[0].Kind != KindInt || tbl.Cols[1].Kind != KindFloat || tbl.Cols[2].Kind != KindString {
		t.Fatalf("kinds: %v %v %v", tbl.Cols[0].Kind, tbl.Cols[1].Kind, tbl.Cols[2].Kind)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	tbl2, err := LoadCSV(&buf, "t2", true)
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.NumRows() != 3 || tbl2.NumCols() != 3 {
		t.Fatalf("roundtrip shape %dx%d", tbl2.NumRows(), tbl2.NumCols())
	}
	for ci := range tbl.Cols {
		for r := 0; r < 3; r++ {
			a := tbl.Cols[ci].ValueString(tbl.Cols[ci].Codes.At(r))
			b := tbl2.Cols[ci].ValueString(tbl2.Cols[ci].Codes.At(r))
			if a != b {
				t.Fatalf("col %d row %d: %q vs %q", ci, r, a, b)
			}
		}
	}
}

func TestLoadCSVErrors(t *testing.T) {
	if _, err := LoadCSV(strings.NewReader(""), "t", false); err == nil {
		t.Fatal("empty csv should error")
	}
	if _, err := LoadCSV(strings.NewReader("a,b\n"), "t", true); err == nil {
		t.Fatal("header-only csv should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SynConfig{Name: "g", Rows: 500, Seed: 7, Cols: []ColSpec{
		{Name: "a", NDV: 10, Skew: 1.5, Parent: -1},
		{Name: "b", NDV: 20, Skew: 0, Parent: 0, Noise: 0.2},
	}}
	t1 := Generate(cfg)
	t2 := Generate(cfg)
	for ci := range t1.Cols {
		for r := 0; r < t1.Cols[ci].NumRows(); r++ {
			if t1.Cols[ci].Codes.At(r) != t2.Cols[ci].Codes.At(r) {
				t.Fatal("generation is not deterministic")
			}
		}
	}
}

func TestGenerateCorrelation(t *testing.T) {
	// With zero noise the child must be a pure function of the parent.
	tbl := Generate(SynConfig{Name: "g", Rows: 2000, Seed: 3, Cols: []ColSpec{
		{Name: "p", NDV: 8, Skew: 0, Parent: -1},
		{Name: "c", NDV: 16, Skew: 0, Parent: 0, Noise: 0},
	}})
	seen := map[int32]int32{}
	for r := 0; r < tbl.NumRows(); r++ {
		p := tbl.Cols[0].Codes.At(r)
		c := tbl.Cols[1].Codes.At(r)
		if prev, ok := seen[p]; ok && prev != c {
			t.Fatalf("child not functional in parent: p=%d -> {%d,%d}", p, prev, c)
		}
		seen[p] = c
	}
}

func TestSyntheticShapes(t *testing.T) {
	dmv := SynDMV(2000, 1)
	if dmv.NumCols() != 11 {
		t.Fatalf("SynDMV cols=%d", dmv.NumCols())
	}
	kdd := SynKDD(1000, 1)
	if kdd.NumCols() != 100 {
		t.Fatalf("SynKDD cols=%d", kdd.NumCols())
	}
	for _, c := range kdd.Cols {
		if d := c.NumDistinct(); d < 2 && c.NumRows() > 500 {
			t.Fatalf("column %s NDV=%d, degenerate", c.Name, d)
		}
		if d := c.NumDistinct(); d > 57 {
			t.Fatalf("column %s NDV=%d exceeds Kddcup98 profile", c.Name, d)
		}
	}
	cen := SynCensus(1000, 1)
	if cen.NumCols() != 14 {
		t.Fatalf("SynCensus cols=%d", cen.NumCols())
	}
	for _, c := range cen.Cols {
		if c.NumDistinct() > 123 {
			t.Fatalf("census column %s NDV=%d exceeds profile", c.Name, c.NumDistinct())
		}
	}
}

func TestZipfSkewShowsUp(t *testing.T) {
	tbl := Generate(SynConfig{Name: "g", Rows: 10000, Seed: 9, Cols: []ColSpec{
		{Name: "z", NDV: 50, Skew: 2.0, Parent: -1},
	}})
	counts := make([]int, 50)
	for _, code := range DecodeCodes(tbl.Cols[0].Codes) {
		counts[tbl.Cols[0].Ints[code]]++
	}
	if counts[0] < 5*counts[10] {
		t.Fatalf("expected strong skew: count0=%d count10=%d", counts[0], counts[10])
	}
}
