package relation

import "math/rand"

// aliasTable is a Walker/Vose alias structure over a non-negative weight
// vector: draw returns index i with probability w[i]/Σw in O(1) — one bucket
// pick plus one threshold comparison — replacing a binary-search descent over
// cumulative weights (O(log n), with n = base rows + dangling rows for the
// join sampler's anchor choice). Construction is O(n).
type aliasTable struct {
	prob  []float64 // per-bucket acceptance threshold, scaled to [0, 1]
	alias []int32   // index drawn when the threshold rejects
}

// newAliasTable builds the table with Vose's two-worklist method: buckets are
// scaled to mean 1, under-full buckets are topped up from over-full ones, and
// every bucket ends up holding at most two indices. Weights must be
// non-negative with a positive sum.
func newAliasTable(w []float64) aliasTable {
	n := len(w)
	at := aliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	var total float64
	for _, x := range w {
		total += x
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, x := range w {
		scaled[i] = x * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		at.prob[s] = scaled[s]
		at.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers sit within float rounding of exactly 1: saturate them.
	for _, i := range large {
		at.prob[i] = 1
		at.alias[i] = i
	}
	for _, i := range small {
		at.prob[i] = 1
		at.alias[i] = i
	}
	return at
}

// draw samples one index proportionally to the construction weights.
func (at aliasTable) draw(rng *rand.Rand) int32 {
	i := int32(rng.Intn(len(at.prob)))
	if rng.Float64() < at.prob[i] {
		return i
	}
	return at.alias[i]
}
