package relation

// CodeArray is the read-only row storage behind Column.Codes: one dictionary
// code per row. Abstracting the storage (instead of a concrete []int32) is
// what lets a column be backed either by an ordinary in-memory slice
// (I32Codes) or by a width-minimal array reinterpreted in place over an
// mmap'd .duetcol file (U8Codes/U16Codes/U32Codes) — or by a mapped base
// plus an in-memory append tail (TailCodes) — without any consumer of the
// relation package changing. Implementations are immutable once published on
// a Column; concurrent readers need no locking.
type CodeArray interface {
	// Len returns the number of rows.
	Len() int
	// At returns the code of row i.
	At(i int) int32
	// AppendTo appends the codes of rows [lo, hi) to dst as int32 and
	// returns the extended slice. It is the bulk-decode path for loops that
	// would otherwise pay one interface call per row.
	AppendTo(dst []int32, lo, hi int) []int32
}

// I32Codes is the in-memory CodeArray: a plain []int32, the representation
// every encoder in this package produces.
type I32Codes []int32

// Len returns the number of rows.
func (s I32Codes) Len() int { return len(s) }

// At returns the code of row i.
func (s I32Codes) At(i int) int32 { return s[i] }

// AppendTo appends rows [lo, hi) to dst.
func (s I32Codes) AppendTo(dst []int32, lo, hi int) []int32 {
	return append(dst, s[lo:hi]...)
}

// U8Codes is a width-1 CodeArray for columns with NDV <= 256, typically
// reinterpreted in place over a mapped .duetcol section.
type U8Codes []uint8

// Len returns the number of rows.
func (s U8Codes) Len() int { return len(s) }

// At returns the code of row i.
func (s U8Codes) At(i int) int32 { return int32(s[i]) }

// AppendTo appends rows [lo, hi) to dst.
func (s U8Codes) AppendTo(dst []int32, lo, hi int) []int32 {
	for _, v := range s[lo:hi] {
		dst = append(dst, int32(v))
	}
	return dst
}

// U16Codes is a width-2 CodeArray for columns with NDV <= 65536.
type U16Codes []uint16

// Len returns the number of rows.
func (s U16Codes) Len() int { return len(s) }

// At returns the code of row i.
func (s U16Codes) At(i int) int32 { return int32(s[i]) }

// AppendTo appends rows [lo, hi) to dst.
func (s U16Codes) AppendTo(dst []int32, lo, hi int) []int32 {
	for _, v := range s[lo:hi] {
		dst = append(dst, int32(v))
	}
	return dst
}

// U32Codes is the width-4 CodeArray for columns whose NDV exceeds 65536.
type U32Codes []uint32

// Len returns the number of rows.
func (s U32Codes) Len() int { return len(s) }

// At returns the code of row i.
func (s U32Codes) At(i int) int32 { return int32(s[i]) }

// AppendTo appends rows [lo, hi) to dst.
func (s U32Codes) AppendTo(dst []int32, lo, hi int) []int32 {
	for _, v := range s[lo:hi] {
		dst = append(dst, int32(v))
	}
	return dst
}

// TailCodes overlays an in-memory append tail on an immutable base (usually a
// mapped column). Base rows come first; rows >= Base.Len() read from Tail.
// When the appended values grew the dictionary, Remap translates base codes
// into the merged code space without rewriting (or even paging in) the base
// array; a nil Remap means the dictionary was unchanged. Tail codes are
// already in the merged space.
type TailCodes struct {
	Base  CodeArray
	Remap []int32 // nil when the base dictionary survived unchanged
	Tail  []int32
}

// Len returns base rows plus tail rows.
func (s *TailCodes) Len() int { return s.Base.Len() + len(s.Tail) }

// At returns the code of row i in the merged code space.
func (s *TailCodes) At(i int) int32 {
	if n := s.Base.Len(); i >= n {
		return s.Tail[i-n]
	}
	if s.Remap == nil {
		return s.Base.At(i)
	}
	return s.Remap[s.Base.At(i)]
}

// AppendTo appends rows [lo, hi) to dst in the merged code space.
func (s *TailCodes) AppendTo(dst []int32, lo, hi int) []int32 {
	n := s.Base.Len()
	if lo < n {
		stop := min(hi, n)
		if s.Remap == nil {
			dst = s.Base.AppendTo(dst, lo, stop)
		} else {
			start := len(dst)
			dst = s.Base.AppendTo(dst, lo, stop)
			for i := start; i < len(dst); i++ {
				dst[i] = s.Remap[dst[i]]
			}
		}
		lo = stop
	}
	if hi > n {
		dst = append(dst, s.Tail[lo-n:hi-n]...)
	}
	return dst
}

// DecodeCodes materializes an entire CodeArray as []int32. The fast path
// returns an I32Codes' backing slice without copying; callers must treat the
// result as read-only.
func DecodeCodes(a CodeArray) []int32 {
	if s, ok := a.(I32Codes); ok {
		return s
	}
	return a.AppendTo(make([]int32, 0, a.Len()), 0, a.Len())
}
