package relation

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// JoinSamplerConfig tunes NewJoinSampler.
type JoinSamplerConfig struct {
	// Seed drives the sampler's deterministic RNG: equal seeds over equal
	// graphs draw equal tuple streams.
	Seed int64
	// Indexes, when non-nil, shares per-edge hash indexes with other
	// operations over the same base tables (MultiJoinIndexed,
	// MultiJoinCardinalityIndexed).
	Indexes *JoinIndexes
}

// JoinSampler draws unbiased uniform samples from the full outer join of a
// join graph without ever materializing it — the NeuroCard insight that
// makes training memory independent of join cardinality. Construction
// precomputes, per edge, the code-level hash index (shared with MultiJoin)
// and, per base-table row, its downward fanout weight: the number of
// full-outer-join rows the row's subtree expands into (a tree DP like
// MultiJoinCardinality's, with outer-join semantics — a missing child
// contributes one NULL branch instead of annihilating the row). A draw then
// picks an anchor — a root row, or a dangling row that the outer join
// preserves below its missing parent — proportionally to its weight (a
// Walker alias table over the anchor weights makes this O(1) regardless of
// base-table size) and descends each edge choosing one match proportionally
// to the match's own subtree weight, which makes every full-outer-join row
// exactly equally likely.
//
// Sampled tuples use the exact column layout MultiJoin materializes —
// "<table>_<col>" value columns over the unchanged source dictionaries (plus
// the NULL sentinel when the table can be absent), a FanoutColumn per table —
// so a model trained on sampler draws is drop-in compatible with the
// registry's join-graph router and Resolution path. The layout, including
// every dictionary, depends only on the graph (never on the draws), so two
// samplers over the same base tables produce interchangeable tables and
// saved models reload against any of them.
//
// All precomputed state is O(base-table rows); a draw allocates nothing.
// The sampler is deterministic and not safe for concurrent use (like
// Model.Estimate, callers serialize or clone).
type JoinSampler struct {
	g        *JoinGraph
	nt       int
	tree     []treeEdge
	children [][]treeEdge
	ors      []oriented // incoming-edge view per non-root table
	par      []int      // parent table index, -1 for the root

	f   [][]float64 // f[t][r]: FOJ rows subtree(t) expands into from row r
	s   [][]float64 // s[c][code]: sum of f[c] over the code's match group
	cum [][]float64 // cum[c]: per-group running sums of f[c], CSR-aligned

	anchorTable []int32
	anchorRow   []int32
	anchorPick  aliasTable
	total       float64

	canBeAbsent []bool
	dangling    [][]int32

	cols     []*Column // dictionary prototypes in view column order
	colBase  []int     // first view column of each table's value columns
	fanIdx   []int     // view column index of each table's fanout column
	fanOne   []int32   // fanout-dict code of value 1 (anchor rows)
	fanByCC  [][]int32 // per table: key code -> fanout-dict code of its group size
	template []int32   // all-absent row codes

	rng    *rand.Rand
	rowBuf []int32
}

// NewJoinSampler validates the graph and precomputes the sampler's indexes,
// weights and view layout.
func NewJoinSampler(g *JoinGraph, cfg JoinSamplerConfig) (*JoinSampler, error) {
	tree, err := g.validate()
	if err != nil {
		return nil, err
	}
	nt := len(g.Tables)
	s := &JoinSampler{
		g: g, nt: nt, tree: tree,
		children: make([][]treeEdge, nt),
		ors:      make([]oriented, nt),
		par:      make([]int, nt),
		f:        make([][]float64, nt),
		s:        make([][]float64, nt),
		cum:      make([][]float64, nt),
		dangling: make([][]int32, nt),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := range s.par {
		s.par[i] = -1
	}
	for _, te := range tree {
		s.children[te.parent] = append(s.children[te.parent], te)
		s.ors[te.child] = cfg.Indexes.orientedFor(g, te)
		s.par[te.child] = te.parent
	}
	// Dangling rows: child rows whose key value no parent row carries.
	for _, te := range tree {
		c := te.child
		cc := g.Tables[c].Cols[te.childCol]
		for r := 0; r < g.Tables[c].NumRows(); r++ {
			if s.ors[c].dangling(cc.Codes.At(r)) {
				s.dangling[c] = append(s.dangling[c], int32(r))
			}
		}
	}
	s.computeWeights()
	s.computeAbsent()
	if err := s.buildLayout(); err != nil {
		return nil, err
	}
	s.buildAnchors()
	if !(s.total > 0) {
		return nil, fmt.Errorf("relation: join graph %q has an empty full outer join; nothing to sample", g.Tables[0].Name)
	}
	s.rowBuf = make([]int32, len(s.cols))
	return s, nil
}

// rowF multiplies, over the row's outgoing edges, the FOJ expansions of each
// child subtree: the matched group's weight sum, or 1 for the NULL branch a
// full outer join keeps when there is no match.
func (s *JoinSampler) rowF(ti, r int) float64 {
	w := 1.0
	t := s.g.Tables[ti]
	for _, te := range s.children[ti] {
		if cc := s.ors[te.child].childCode(t.Cols[te.parentCol].Codes.At(r)); cc >= 0 {
			w *= s.s[te.child][cc]
		}
	}
	return w
}

// computeWeights runs the outer-join tree DP bottom-up (reverse BFS order
// visits children before parents) and builds the per-group cumulative
// weights weighted descent binary-searches.
func (s *JoinSampler) computeWeights() {
	for i := len(s.tree) - 1; i >= -1; i-- {
		ti := 0
		if i >= 0 {
			ti = s.tree[i].child
		}
		fc := make([]float64, s.g.Tables[ti].NumRows())
		for r := range fc {
			fc[r] = s.rowF(ti, r)
		}
		s.f[ti] = fc
		if ti == 0 {
			continue
		}
		side := s.ors[ti].child
		sums := make([]float64, len(side.start)-1)
		cums := make([]float64, len(side.rows))
		for code := range sums {
			run := 0.0
			for pos := side.start[code]; pos < side.start[code+1]; pos++ {
				run += fc[side.rows[pos]]
				cums[pos] = run
			}
			sums[code] = run
		}
		s.s[ti] = sums
		s.cum[ti] = cums
	}
}

// computeAbsent determines, exactly and per table, whether any FOJ row
// misses it — which decides NULL sentinels, so the sampled layout matches
// what MultiJoin would materialize without materializing anything.
//
// A table u is absent from some FOJ row iff (a) a dangling anchor exists at
// a table that is neither u nor one of u's ancestors (those rows never reach
// u's branch), or (b) walking down from some anchor above u, some anchored
// row's expansion breaks before u: a row of a node on the root→u path whose
// key has no match in the next node toward u.
func (s *JoinSampler) computeAbsent() {
	abs := make([]bool, s.nt)
	for _, d := range s.dangling {
		if len(d) > 0 {
			abs[0] = true // every dangling anchor's rows miss the root
			break
		}
	}
	for u := 1; u < s.nt; u++ {
		path := []int{u} // u up to the root
		for v := s.par[u]; v >= 0; v = s.par[v] {
			path = append(path, v)
		}
		anc := make([]bool, s.nt)
		for _, v := range path[1:] {
			anc[v] = true
		}
		for d := 0; d < s.nt && !abs[u]; d++ {
			if d != u && !anc[d] && len(s.dangling[d]) > 0 {
				abs[u] = true
			}
		}
		// Bottom-up along the path: groupMiss[code] records whether some row
		// of the node below, in that key group, can expand to a row missing u.
		groupMiss := make([]bool, len(s.ors[u].child.start)-1)
		below := u
		for k := 1; k < len(path) && !abs[u]; k++ {
			v := path[k]
			t := s.g.Tables[v]
			var pcol *Column
			for _, te := range s.children[v] {
				if te.child == below {
					pcol = t.Cols[te.parentCol]
					break
				}
			}
			rowMiss := func(r int) bool {
				cc := s.ors[below].childCode(pcol.Codes.At(r))
				return cc < 0 || groupMiss[cc]
			}
			if v == 0 {
				for r := 0; r < t.NumRows() && !abs[u]; r++ {
					if rowMiss(r) {
						abs[u] = true
					}
				}
				break
			}
			for _, r := range s.dangling[v] {
				if rowMiss(int(r)) {
					abs[u] = true
					break
				}
			}
			if abs[u] {
				break
			}
			vside := s.ors[v].child
			next := make([]bool, len(vside.start)-1)
			for r := 0; r < t.NumRows(); r++ {
				if rowMiss(r) {
					next[vside.col.Codes.At(r)] = true
				}
			}
			groupMiss = next
			below = v
		}
	}
	s.canBeAbsent = abs
}

// buildLayout fixes the sampled view's column prototypes: per table its
// value columns (source dictionary, NULL sentinel iff the table can be
// absent) then its fanout column, whose dictionary enumerates exactly the
// fanout values the full FOJ realizes (0 when absence is possible, 1 for
// anchors, and every match-group size reachable through the parent).
func (s *JoinSampler) buildLayout() error {
	g := s.g
	names := make(map[string]bool)
	tableNames := make([]string, s.nt)
	for i, t := range g.Tables {
		tableNames[i] = t.Name
	}
	s.colBase = make([]int, s.nt)
	s.fanIdx = make([]int, s.nt)
	s.fanOne = make([]int32, s.nt)
	s.fanByCC = make([][]int32, s.nt)
	for ti, t := range g.Tables {
		s.colBase[ti] = len(s.cols)
		for _, src := range t.Cols {
			cn := JoinViewColumn(t.Name, src.Name)
			if names[cn] {
				return fmt.Errorf("relation: join view column %q collides; rename table or column", cn)
			}
			for _, other := range tableNames {
				if other != t.Name && strings.HasPrefix(cn, JoinViewColumn(other, "")) {
					return fmt.Errorf("relation: join view column %q is ambiguous between tables %q and %q; rename table or column", cn, t.Name, other)
				}
			}
			names[cn] = true
			col, err := dictWithNull(cn, src, s.canBeAbsent[ti])
			if err != nil {
				return err
			}
			s.cols = append(s.cols, col)
		}
		fn := FanoutColumn(t.Name)
		if names[fn] {
			return fmt.Errorf("relation: join view column %q collides; rename table or column", fn)
		}
		names[fn] = true
		vals := map[int64]bool{}
		if s.canBeAbsent[ti] {
			vals[0] = true
		}
		if ti == 0 {
			vals[1] = true
		} else {
			if len(s.dangling[ti]) > 0 {
				vals[1] = true
			}
			o := s.ors[ti]
			for _, cc := range o.parent.toOther {
				if cc >= 0 {
					vals[int64(o.groupSize(cc))] = true
				}
			}
		}
		dict := make([]int64, 0, len(vals))
		for v := range vals {
			dict = append(dict, v)
		}
		sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
		fanCol := &Column{Name: fn, Kind: KindInt, Ints: dict}
		s.fanIdx[ti] = len(s.cols)
		s.cols = append(s.cols, fanCol)
		s.fanOne[ti] = fanDictCode(dict, 1)
		if ti > 0 {
			o := s.ors[ti]
			byCC := make([]int32, len(o.child.start)-1)
			for cc := range byCC {
				byCC[cc] = fanDictCode(dict, int64(o.groupSize(int32(cc))))
			}
			s.fanByCC[ti] = byCC
		}
	}
	// The all-absent template: NULL sentinel codes on value columns, fanout 0.
	s.template = make([]int32, len(s.cols))
	for ti, t := range g.Tables {
		for si, src := range t.Cols {
			if s.canBeAbsent[ti] {
				s.template[s.colBase[ti]+si] = int32(src.NumDistinct())
			}
		}
		s.template[s.fanIdx[ti]] = fanDictCode(s.cols[s.fanIdx[ti]].Ints, 0)
		if s.template[s.fanIdx[ti]] < 0 {
			s.template[s.fanIdx[ti]] = 0 // table can never be absent: overwritten on every draw
		}
	}
	return nil
}

// fanDictCode locates v in a sorted fanout dictionary, -1 when absent.
func fanDictCode(dict []int64, v int64) int32 {
	i := sort.Search(len(dict), func(k int) bool { return dict[k] >= v })
	if i < len(dict) && dict[i] == v {
		return int32(i)
	}
	return -1
}

// buildAnchors lays out the weighted anchor choice: every root row, then
// every dangling row, behind a Walker alias table so an anchor draw is O(1)
// instead of a binary search over O(base rows) cumulative weights.
func (s *JoinSampler) buildAnchors() {
	var weights []float64
	add := func(ti int, r int32) {
		weights = append(weights, s.f[ti][r])
		s.anchorTable = append(s.anchorTable, int32(ti))
		s.anchorRow = append(s.anchorRow, r)
	}
	for r := 0; r < s.g.Tables[0].NumRows(); r++ {
		add(0, int32(r))
	}
	for ti := 1; ti < s.nt; ti++ {
		for _, r := range s.dangling[ti] {
			add(ti, r)
		}
	}
	s.total = 0
	for _, w := range weights {
		s.total += w
	}
	if s.total > 0 {
		s.anchorPick = newAliasTable(weights)
	}
}

// NumCols returns the number of view columns a drawn tuple spans.
func (s *JoinSampler) NumCols() int { return len(s.cols) }

// Total returns the exact number of rows of the full outer join the sampler
// draws from (exact while it fits a float64 mantissa, i.e. below 2^53) —
// what MultiJoin would materialize.
func (s *JoinSampler) Total() int64 { return int64(math.Round(s.total)) }

// Draw fills dst (len >= NumCols, allocated when nil) with the dictionary
// codes of one uniformly drawn full-outer-join row and returns it.
func (s *JoinSampler) Draw(dst []int32) []int32 {
	if dst == nil {
		dst = make([]int32, len(s.cols))
	}
	copy(dst, s.template)
	i := int(s.anchorPick.draw(s.rng))
	ti := int(s.anchorTable[i])
	dst[s.fanIdx[ti]] = s.fanOne[ti]
	s.descend(ti, int(s.anchorRow[i]), dst)
	return dst
}

// descend writes row r of table ti into dst and recursively samples one
// match per outgoing edge, each proportionally to its subtree weight.
func (s *JoinSampler) descend(ti, r int, dst []int32) {
	t := s.g.Tables[ti]
	base := s.colBase[ti]
	for si, src := range t.Cols {
		dst[base+si] = src.Codes.At(r)
	}
	for _, te := range s.children[ti] {
		c := te.child
		o := s.ors[c]
		cc := o.childCode(t.Cols[te.parentCol].Codes.At(r))
		if cc < 0 {
			continue // NULL branch: the template already marks c's subtree absent
		}
		dst[s.fanIdx[c]] = s.fanByCC[c][cc]
		side := o.child
		st, en := side.start[cc], side.start[cc+1]
		target := s.rng.Float64() * s.s[c][cc]
		cums := s.cum[c]
		pos := int(st) + sort.Search(int(en-st), func(k int) bool { return cums[int(st)+k] > target })
		if pos >= int(en) {
			pos = int(en) - 1
		}
		s.descend(c, int(side.rows[pos]), dst)
	}
}

// DrawTuples fills each dst[i] with one drawn tuple — the core.TupleSource
// contract the tuple-stream training path consumes.
func (s *JoinSampler) DrawTuples(dst [][]int32) {
	for i := range dst {
		dst[i] = s.Draw(dst[i])
	}
}

// SampleTable draws n tuples and materializes them as a table in the exact
// MultiJoin view layout (the dictionaries are the precomputed prototypes, so
// the table's NDV profile is independent of the draws). It is the
// sample-budget substrate a sampled join-graph view registers and trains
// against: memory is O(n), never O(join size).
func (s *JoinSampler) SampleTable(name string, n int) (*Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("relation: sample budget must be positive, got %d", n)
	}
	codes := make([][]int32, len(s.cols))
	for c := range codes {
		codes[c] = make([]int32, n)
	}
	for i := 0; i < n; i++ {
		s.Draw(s.rowBuf)
		for c := range codes {
			codes[c][i] = s.rowBuf[c]
		}
	}
	cols := make([]*Column, len(s.cols))
	for c, proto := range s.cols {
		cols[c] = &Column{Name: proto.Name, Kind: proto.Kind,
			Ints: proto.Ints, Floats: proto.Floats, Strs: proto.Strs, Codes: I32Codes(codes[c])}
	}
	return NewTable(name, cols), nil
}
