package relation

import (
	"strings"
	"testing"
)

// chainTables builds a small orders -> customers -> regions chain with
// dangling rows on every side so the full outer join is exercised.
func chainTables() (orders, customers, regions *Table) {
	// customers: ids 1..4; customer 4 has no orders, region 9 is unknown.
	customers = NewTable("customers", []*Column{
		NewIntColumn("id", []int64{1, 2, 3, 4}),
		NewIntColumn("region_id", []int64{10, 11, 10, 9}),
	})
	// orders: cust_id 5 matches no customer (dangling order).
	orders = NewTable("orders", []*Column{
		NewIntColumn("cust_id", []int64{1, 1, 2, 3, 5}),
		NewIntColumn("amount", []int64{7, 8, 7, 9, 6}),
	})
	// regions: region 12 has no customers (dangling region).
	regions = NewTable("regions", []*Column{
		NewIntColumn("region_id", []int64{10, 11, 12}),
		NewIntColumn("pop", []int64{100, 200, 300}),
	})
	return orders, customers, regions
}

func chainGraph(orders, customers, regions *Table) *JoinGraph {
	return &JoinGraph{
		Tables: []*Table{orders, customers, regions},
		Edges: []JoinEdge{
			{"orders", "cust_id", "customers", "id"},
			{"customers", "region_id", "regions", "region_id"},
		},
	}
}

// bruteChainInner counts the 3-way inner join by nested hash joins on raw
// values, independently of MultiJoin.
func bruteChainInner(orders, customers, regions *Table) int64 {
	regByID := map[int64]int64{}
	for r := 0; r < regions.NumRows(); r++ {
		regByID[regions.Cols[0].Ints[regions.Cols[0].Codes.At(r)]]++
	}
	custByID := map[int64]int64{}
	for r := 0; r < customers.NumRows(); r++ {
		id := customers.Cols[0].Ints[customers.Cols[0].Codes.At(r)]
		reg := customers.Cols[1].Ints[customers.Cols[1].Codes.At(r)]
		custByID[id] += regByID[reg]
	}
	var total int64
	for r := 0; r < orders.NumRows(); r++ {
		total += custByID[orders.Cols[0].Ints[orders.Cols[0].Codes.At(r)]]
	}
	return total
}

func TestMultiJoinChain(t *testing.T) {
	orders, customers, regions := chainTables()
	g := chainGraph(orders, customers, regions)
	joined, err := MultiJoin("ocr", g)
	if err != nil {
		t.Fatal(err)
	}

	// Expected full outer join by hand: orders 1,1,2,3 match customers 1,2,3
	// which match regions 10,11,10 -> 4 fully joined rows. Order with
	// cust_id=5 survives alone among orders; customer 4 survives with region
	// NULL (its region 9 is unknown); region 12 survives alone.
	// Rows: 4 (inner) + 1 (dangling order) + 1 (customer 4) + 1 (region 12).
	if got := joined.NumRows(); got != 7 {
		t.Fatalf("FOJ rows = %d, want 7", got)
	}

	// Columns: per table its source columns then its fanout column.
	wantCols := []string{
		"orders_cust_id", "orders_amount", "__fanout_orders",
		"customers_id", "customers_region_id", "__fanout_customers",
		"regions_region_id", "regions_pop", "__fanout_regions",
	}
	if joined.NumCols() != len(wantCols) {
		t.Fatalf("got %d columns", joined.NumCols())
	}
	for i, w := range wantCols {
		if joined.Cols[i].Name != w {
			t.Fatalf("column %d = %q, want %q", i, joined.Cols[i].Name, w)
		}
	}

	// Inner-join recovery: rows where every fanout >= 1 must match both the
	// DP cardinality and the brute-force hash join.
	want := bruteChainInner(orders, customers, regions)
	dp, err := MultiJoinCardinality(g)
	if err != nil {
		t.Fatal(err)
	}
	if dp != want {
		t.Fatalf("MultiJoinCardinality = %d, brute force = %d", dp, want)
	}
	var inner int64
	fanIdx := []int{joined.ColumnIndex("__fanout_orders"), joined.ColumnIndex("__fanout_customers"), joined.ColumnIndex("__fanout_regions")}
	for r := 0; r < joined.NumRows(); r++ {
		all := true
		for _, fi := range fanIdx {
			c := joined.Cols[fi]
			if c.Ints[c.Codes.At(r)] < 1 {
				all = false
				break
			}
		}
		if all {
			inner++
		}
	}
	if inner != want {
		t.Fatalf("all-fanout>=1 rows = %d, want inner join %d", inner, want)
	}

	// Every base row survives: each base value multiset must appear.
	amount := joined.Cols[joined.ColumnIndex("orders_amount")]
	seen := map[int64]int{}
	foOrders := joined.Cols[fanIdx[0]]
	for r := 0; r < joined.NumRows(); r++ {
		if foOrders.Ints[foOrders.Codes.At(r)] >= 1 {
			seen[amount.Ints[amount.Codes.At(r)]]++
		}
	}
	for _, a := range []int64{6, 7, 8, 9} {
		if seen[a] == 0 {
			t.Fatalf("order amount %d lost by the outer join", a)
		}
	}

	// NULL sentinels sort past every real value: customers_id has max 4, so
	// its sentinel is 5 and absent rows carry the last code.
	cid := joined.Cols[joined.ColumnIndex("customers_id")]
	if got := cid.Ints[cid.NumDistinct()-1]; got != 5 {
		t.Fatalf("customers_id NULL sentinel = %d, want 5", got)
	}
}

func TestMultiJoinStarMatchesDP(t *testing.T) {
	// Star: fact in the middle, two dimensions, generated with skew so
	// fanouts vary.
	dimA := Generate(SynConfig{Name: "da", Rows: 60, Seed: 3, Cols: []ColSpec{
		{Name: "k", NDV: 40, Skew: 0.5, Parent: -1},
		{Name: "x", NDV: 8, Skew: 1.0, Parent: 0, Noise: 0.2},
	}})
	dimB := Generate(SynConfig{Name: "db", Rows: 50, Seed: 4, Cols: []ColSpec{
		{Name: "k", NDV: 30, Skew: 0.8, Parent: -1},
		{Name: "y", NDV: 6, Skew: 1.2, Parent: 0, Noise: 0.2},
	}})
	fact := Generate(SynConfig{Name: "fact", Rows: 200, Seed: 5, Cols: []ColSpec{
		{Name: "a_k", NDV: 45, Skew: 1.1, Parent: -1},
		{Name: "b_k", NDV: 35, Skew: 1.3, Parent: -1},
	}})
	g := &JoinGraph{
		Tables: []*Table{fact, dimA, dimB},
		Edges: []JoinEdge{
			{"fact", "a_k", "da", "k"},
			{"fact", "b_k", "db", "k"},
		},
	}
	joined, err := MultiJoin("star", g)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := MultiJoinCardinality(g)
	if err != nil {
		t.Fatal(err)
	}
	var inner int64
	fanCols := []*Column{
		joined.Cols[joined.ColumnIndex(FanoutColumn("fact"))],
		joined.Cols[joined.ColumnIndex(FanoutColumn("da"))],
		joined.Cols[joined.ColumnIndex(FanoutColumn("db"))],
	}
	for r := 0; r < joined.NumRows(); r++ {
		all := true
		for _, c := range fanCols {
			if c.Ints[c.Codes.At(r)] < 1 {
				all = false
				break
			}
		}
		if all {
			inner++
		}
	}
	if inner != dp {
		t.Fatalf("star inner rows %d != DP cardinality %d", inner, dp)
	}
	// Pairwise consistency: the 2-table DP must agree with JoinCardinality.
	pair := &JoinGraph{Tables: []*Table{fact, dimA}, Edges: []JoinEdge{{"fact", "a_k", "da", "k"}}}
	dp2, err := MultiJoinCardinality(pair)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := JoinCardinality(fact, "a_k", dimA, "k")
	if err != nil {
		t.Fatal(err)
	}
	if dp2 != legacy {
		t.Fatalf("2-way DP %d != JoinCardinality %d", dp2, legacy)
	}
}

func TestJoinGraphValidation(t *testing.T) {
	orders, customers, regions := chainTables()
	for _, tc := range []struct {
		name string
		g    *JoinGraph
		want string
	}{
		{"one table", &JoinGraph{Tables: []*Table{orders}}, "at least 2 tables"},
		{"missing edge", &JoinGraph{Tables: []*Table{orders, customers, regions},
			Edges: []JoinEdge{{"orders", "cust_id", "customers", "id"}}}, "spanning tree"},
		{"cycle", &JoinGraph{Tables: []*Table{orders, customers},
			Edges: []JoinEdge{{"orders", "cust_id", "customers", "id"}, {"orders", "amount", "customers", "region_id"}}}, "spanning tree"},
		{"disconnected", &JoinGraph{Tables: []*Table{orders, customers, regions},
			Edges: []JoinEdge{{"orders", "cust_id", "customers", "id"}, {"customers", "id", "orders", "amount"}}}, "not connected"},
		{"unknown table", &JoinGraph{Tables: []*Table{orders, customers},
			Edges: []JoinEdge{{"orders", "cust_id", "nope", "id"}}}, "outside the graph"},
		{"unknown column", &JoinGraph{Tables: []*Table{orders, customers},
			Edges: []JoinEdge{{"orders", "bogus", "customers", "id"}}}, "not found"},
		{"self join", &JoinGraph{Tables: []*Table{orders, customers},
			Edges: []JoinEdge{{"orders", "cust_id", "orders", "amount"}}}, "to itself"},
	} {
		if _, err := MultiJoin("x", tc.g); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: MultiJoin err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// Kind mismatch through a string column.
	s := NewTable("s", []*Column{NewStringColumn("k", []string{"1", "2"})})
	g := &JoinGraph{Tables: []*Table{orders, s}, Edges: []JoinEdge{{"orders", "cust_id", "s", "k"}}}
	if _, err := MultiJoin("x", g); err == nil || !strings.Contains(err.Error(), "kinds differ") {
		t.Fatalf("kind mismatch: %v", err)
	}
}

// TestMultiJoinMatchesEquiJoinInner: restricting the 2-table FOJ to rows with
// both fanouts >= 1 yields exactly as many rows as the legacy inner EquiJoin.
func TestMultiJoinMatchesEquiJoinInner(t *testing.T) {
	orders, customers, _ := chainTables()
	inner, err := EquiJoin("oc", orders, "cust_id", customers, "id")
	if err != nil {
		t.Fatal(err)
	}
	g := &JoinGraph{Tables: []*Table{orders, customers},
		Edges: []JoinEdge{{"orders", "cust_id", "customers", "id"}}}
	foj, err := MultiJoin("oc_foj", g)
	if err != nil {
		t.Fatal(err)
	}
	fo := foj.Cols[foj.ColumnIndex(FanoutColumn("orders"))]
	fc := foj.Cols[foj.ColumnIndex(FanoutColumn("customers"))]
	var n int
	for r := 0; r < foj.NumRows(); r++ {
		if fo.Ints[fo.Codes.At(r)] >= 1 && fc.Ints[fc.Codes.At(r)] >= 1 {
			n++
		}
	}
	if n != inner.NumRows() {
		t.Fatalf("FOJ inner rows %d != EquiJoin rows %d", n, inner.NumRows())
	}
}
