package relation

import (
	"fmt"
	"math/rand"
)

// ColSpec describes one synthetic column.
type ColSpec struct {
	Name   string
	NDV    int     // domain size before compaction
	Skew   float64 // Zipf s parameter (>1); <=1 means uniform
	Parent int     // index of the column this one correlates with; -1 for none
	Noise  float64 // probability of ignoring the parent and sampling fresh
}

// SynConfig configures the generic correlated-Zipf generator.
type SynConfig struct {
	Name string
	Rows int
	Seed int64
	Cols []ColSpec
}

// Generate produces a synthetic table. Root columns draw codes from a Zipf
// (or uniform) distribution over their domain; dependent columns follow a
// fixed pseudo-random functional map of their parent's code with probability
// 1-Noise, which produces the strong cross-column correlation that separates
// joint-distribution estimators from attribute-independence ones.
func Generate(cfg SynConfig) *Table {
	if cfg.Rows <= 0 {
		panic("relation: Generate needs Rows > 0")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := len(cfg.Cols)
	codes := make([][]int32, n)
	samplers := make([]func() int32, n)
	for i, cs := range cfg.Cols {
		if cs.NDV < 1 {
			panic(fmt.Sprintf("relation: column %q NDV must be >= 1", cs.Name))
		}
		if cs.Parent >= i {
			panic(fmt.Sprintf("relation: column %q parent %d must precede it", cs.Name, cs.Parent))
		}
		codes[i] = make([]int32, cfg.Rows)
		samplers[i] = makeSampler(cs, rng)
	}
	for i, cs := range cfg.Cols {
		sample := samplers[i]
		if cs.Parent < 0 {
			for r := 0; r < cfg.Rows; r++ {
				codes[i][r] = sample()
			}
			continue
		}
		parent := codes[cs.Parent]
		ndv := int32(cs.NDV)
		for r := 0; r < cfg.Rows; r++ {
			if rng.Float64() < cs.Noise {
				codes[i][r] = sample()
			} else {
				codes[i][r] = funcMap(parent[r], ndv)
			}
		}
	}
	cols := make([]*Column, n)
	for i, cs := range cfg.Cols {
		cols[i] = NewCodedColumn(cs.Name, codes[i], cs.NDV)
	}
	return NewTable(cfg.Name, cols)
}

// funcMap is the deterministic parent→child code map (a Fibonacci hash into
// the child domain).
func funcMap(parent, ndv int32) int32 {
	h := uint64(uint32(parent)) * 2654435761
	return int32(h % uint64(ndv))
}

func makeSampler(cs ColSpec, rng *rand.Rand) func() int32 {
	if cs.Skew > 1 && cs.NDV > 1 {
		z := rand.NewZipf(rng, cs.Skew, 1, uint64(cs.NDV-1))
		return func() int32 { return int32(z.Uint64()) }
	}
	ndv := cs.NDV
	return func() int32 { return int32(rng.Intn(ndv)) }
}

// SynDMV mirrors the shape of the DMV dataset used by Naru and Duet: 11
// columns mixing tiny flag domains, mid-size categorical domains, a
// date-like column, and a large 2774-value domain, with Zipf skew and a
// correlation chain (e.g. county depends on state, body type on record
// type). The paper's table has 12.37M rows; pass rows to scale.
func SynDMV(rows int, seed int64) *Table {
	return Generate(SynConfig{
		Name: "syn-dmv", Rows: rows, Seed: seed,
		Cols: []ColSpec{
			{Name: "record_type", NDV: 4, Skew: 1.3, Parent: -1},
			{Name: "reg_class", NDV: 75, Skew: 1.5, Parent: 0, Noise: 0.3},
			{Name: "state", NDV: 67, Skew: 2.0, Parent: -1},
			{Name: "county", NDV: 63, Skew: 1.2, Parent: 2, Noise: 0.15},
			{Name: "body_type", NDV: 35, Skew: 1.4, Parent: 1, Noise: 0.25},
			{Name: "fuel_type", NDV: 9, Skew: 1.8, Parent: 4, Noise: 0.2},
			{Name: "reg_date", NDV: 367, Skew: 0, Parent: -1},
			{Name: "color", NDV: 225, Skew: 1.6, Parent: -1},
			{Name: "scofflaw", NDV: 2, Skew: 2.5, Parent: -1},
			{Name: "suspension", NDV: 2, Skew: 2.5, Parent: 8, Noise: 0.4},
			{Name: "max_weight", NDV: 2774, Skew: 1.1, Parent: 4, Noise: 0.35},
		},
	})
}

// SynKDD mirrors Kddcup98: 100 columns with NDV in [2, 57], organized as 20
// correlated blocks of 5 columns (a root plus four noisy dependents). This
// is the high-dimensional table on which the paper demonstrates progressive
// sampling's long-tail problem and Duet's O(1) scalability. The original has
// 95,412 rows.
func SynKDD(rows int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	cols := make([]ColSpec, 0, 100)
	for b := 0; b < 20; b++ {
		root := len(cols)
		cols = append(cols, ColSpec{
			Name: fmt.Sprintf("c%02d_root", b), NDV: 2 + rng.Intn(56),
			Skew: 1.1 + rng.Float64(), Parent: -1,
		})
		for k := 1; k < 5; k++ {
			cols = append(cols, ColSpec{
				Name: fmt.Sprintf("c%02d_%d", b, k), NDV: 2 + rng.Intn(56),
				Skew: 1.1 + rng.Float64(), Parent: root, Noise: 0.1 + 0.2*rng.Float64(),
			})
		}
	}
	return Generate(SynConfig{Name: "syn-kdd", Rows: rows, Seed: seed, Cols: cols})
}

// SynCensus mirrors the UCI Census (adult) dataset: 14 columns, NDV in
// [2, 123], moderate skew, a few correlated pairs (education/occupation,
// relationship/marital status). The original has 48,842 rows.
func SynCensus(rows int, seed int64) *Table {
	return Generate(SynConfig{
		Name: "syn-census", Rows: rows, Seed: seed,
		Cols: []ColSpec{
			{Name: "age", NDV: 74, Skew: 1.2, Parent: -1},
			{Name: "workclass", NDV: 9, Skew: 1.7, Parent: -1},
			{Name: "fnlwgt_bin", NDV: 100, Skew: 0, Parent: -1},
			{Name: "education", NDV: 16, Skew: 1.4, Parent: -1},
			{Name: "education_num", NDV: 16, Skew: 0, Parent: 3, Noise: 0.02},
			{Name: "marital", NDV: 7, Skew: 1.5, Parent: 0, Noise: 0.3},
			{Name: "occupation", NDV: 15, Skew: 1.3, Parent: 3, Noise: 0.25},
			{Name: "relationship", NDV: 6, Skew: 1.4, Parent: 5, Noise: 0.2},
			{Name: "race", NDV: 5, Skew: 2.2, Parent: -1},
			{Name: "sex", NDV: 2, Skew: 1.3, Parent: 7, Noise: 0.35},
			{Name: "capital_gain", NDV: 123, Skew: 2.8, Parent: -1},
			{Name: "capital_loss", NDV: 99, Skew: 2.8, Parent: 10, Noise: 0.3},
			{Name: "hours", NDV: 96, Skew: 1.6, Parent: -1},
			{Name: "income", NDV: 2, Skew: 1.5, Parent: 3, Noise: 0.3},
		},
	})
}
