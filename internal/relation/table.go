package relation

import "fmt"

// Table is a named collection of equally long columns.
type Table struct {
	Name string
	Cols []*Column
}

// NewTable validates that all columns have the same length and wraps them.
func NewTable(name string, cols []*Column) *Table {
	if len(cols) == 0 {
		panic("relation: table needs at least one column")
	}
	n := cols[0].NumRows()
	for _, c := range cols[1:] {
		if c.NumRows() != n {
			panic(fmt.Sprintf("relation: column %q has %d rows, expected %d", c.Name, c.NumRows(), n))
		}
	}
	return &Table{Name: name, Cols: cols}
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.Cols[0].NumRows() }

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.Cols) }

// RowCodes copies the dictionary codes of row r into dst (len >= NumCols)
// and returns it, allocating when dst is nil.
func (t *Table) RowCodes(r int, dst []int32) []int32 {
	if dst == nil {
		dst = make([]int32, len(t.Cols))
	}
	for i, c := range t.Cols {
		dst[i] = c.Codes.At(r)
	}
	return dst
}

// NDVs returns the number of distinct values per column.
func (t *Table) NDVs() []int {
	out := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		out[i] = c.NumDistinct()
	}
	return out
}

// ColumnIndex returns the index of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Stats summarizes a table for logging.
func (t *Table) Stats() string {
	mn, mx := t.Cols[0].NumDistinct(), t.Cols[0].NumDistinct()
	for _, c := range t.Cols[1:] {
		d := c.NumDistinct()
		if d < mn {
			mn = d
		}
		if d > mx {
			mx = d
		}
	}
	return fmt.Sprintf("%s: %d rows, %d cols, NDV %d..%d", t.Name, t.NumRows(), t.NumCols(), mn, mx)
}
