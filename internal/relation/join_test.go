package relation

import (
	"testing"
	"testing/quick"
)

func TestEquiJoinBasic(t *testing.T) {
	left := NewTable("orders", []*Column{
		NewIntColumn("cust_id", []int64{1, 2, 2, 3}),
		NewIntColumn("amount", []int64{10, 20, 30, 40}),
	})
	right := NewTable("customers", []*Column{
		NewIntColumn("id", []int64{1, 2, 4}),
		NewIntColumn("region", []int64{7, 8, 9}),
	})
	j, err := EquiJoin("oc", left, "cust_id", right, "id")
	if err != nil {
		t.Fatal(err)
	}
	// cust 1 matches once, cust 2 twice, cust 3 never -> 3 rows.
	if j.NumRows() != 3 {
		t.Fatalf("join rows %d want 3", j.NumRows())
	}
	if j.NumCols() != 3 { // l_cust_id, l_amount, r_region
		t.Fatalf("join cols %d want 3", j.NumCols())
	}
	if j.ColumnIndex("l_cust_id") < 0 || j.ColumnIndex("r_region") < 0 {
		t.Fatalf("column names: %v", colNames(j))
	}
	// Verify a joined row: amount 20 (cust 2) pairs with region 8.
	ai := j.ColumnIndex("l_amount")
	gi := j.ColumnIndex("r_region")
	found := false
	for r := 0; r < j.NumRows(); r++ {
		amount := j.Cols[ai].Ints[j.Cols[ai].Codes.At(r)]
		region := j.Cols[gi].Ints[j.Cols[gi].Codes.At(r)]
		if amount == 20 && region == 8 {
			found = true
		}
	}
	if !found {
		t.Fatal("expected (20, 8) pair missing")
	}
}

func colNames(t *Table) []string {
	out := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		out[i] = c.Name
	}
	return out
}

func TestEquiJoinErrors(t *testing.T) {
	a := NewTable("a", []*Column{NewIntColumn("x", []int64{1})})
	b := NewTable("b", []*Column{NewStringColumn("y", []string{"1"})})
	if _, err := EquiJoin("j", a, "nope", b, "y"); err == nil {
		t.Fatal("missing column should error")
	}
	if _, err := EquiJoin("j", a, "x", b, "y"); err == nil {
		t.Fatal("kind mismatch should error")
	}
}

func TestJoinCardinalityMatchesMaterialized(t *testing.T) {
	f := func(seedL, seedR int64) bool {
		left := Generate(SynConfig{Name: "l", Rows: 120, Seed: seedL, Cols: []ColSpec{
			{Name: "k", NDV: 9, Skew: 1.3, Parent: -1},
			{Name: "v", NDV: 5, Skew: 0, Parent: -1},
		}})
		right := Generate(SynConfig{Name: "r", Rows: 80, Seed: seedR, Cols: []ColSpec{
			{Name: "k", NDV: 9, Skew: 0, Parent: -1},
			{Name: "w", NDV: 4, Skew: 0, Parent: -1},
		}})
		j, err := EquiJoin("j", left, "k", right, "k")
		if err != nil {
			return false
		}
		card, err := JoinCardinality(left, "k", right, "k")
		if err != nil {
			return false
		}
		return int64(j.NumRows()) == card
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinedTableUsableForEstimation(t *testing.T) {
	// The join result is a normal Table: dictionaries sorted, codes valid.
	left := Generate(SynConfig{Name: "l", Rows: 200, Seed: 3, Cols: []ColSpec{
		{Name: "k", NDV: 12, Skew: 1.4, Parent: -1},
		{Name: "v", NDV: 20, Skew: 1.1, Parent: 0, Noise: 0.2},
	}})
	right := Generate(SynConfig{Name: "r", Rows: 150, Seed: 4, Cols: []ColSpec{
		{Name: "k", NDV: 12, Skew: 0, Parent: -1},
		{Name: "w", NDV: 6, Skew: 0, Parent: -1},
	}})
	j, err := EquiJoin("j", left, "k", right, "k")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range j.Cols {
		for i := 1; i < c.NumDistinct(); i++ {
			if c.Kind == KindInt && c.Ints[i] <= c.Ints[i-1] {
				t.Fatalf("column %s dictionary not sorted", c.Name)
			}
		}
		for _, code := range DecodeCodes(c.Codes) {
			if int(code) >= c.NumDistinct() || code < 0 {
				t.Fatalf("column %s code %d out of range", c.Name, code)
			}
		}
	}
}
