package deepdb

import (
	"testing"
	"testing/quick"

	"duet/internal/exec"
	"duet/internal/relation"
	"duet/internal/workload"
)

func testTable(rows int) *relation.Table {
	return relation.Generate(relation.SynConfig{
		Name: "t", Rows: rows, Seed: 61,
		Cols: []relation.ColSpec{
			{Name: "a", NDV: 12, Skew: 1.4, Parent: -1},
			{Name: "b", NDV: 6, Skew: 0, Parent: 0, Noise: 0.05},
			{Name: "c", NDV: 30, Skew: 1.3, Parent: -1},
			{Name: "d", NDV: 4, Skew: 0, Parent: -1},
		},
	})
}

func TestTotalMassIsOne(t *testing.T) {
	tbl := testTable(1000)
	m := New(tbl, DefaultConfig())
	// Unconstrained query: SPN must integrate to ~1 (Laplace smoothing makes
	// it exact up to float error).
	got := m.EstimateCard(workload.Query{})
	if got < 990 || got > 1010 {
		t.Fatalf("total mass estimate %v, want ~1000", got)
	}
}

func TestMarginalConsistencyProperty(t *testing.T) {
	tbl := testTable(800)
	m := New(tbl, DefaultConfig())
	// P(a <= v) must be monotone in v and reach ~1.
	col := 0
	ndv := int32(tbl.Cols[col].NumDistinct())
	prev := -1.0
	for v := int32(0); v < ndv; v++ {
		q := workload.Query{Preds: []workload.Predicate{{Col: col, Op: workload.OpLe, Code: v}}}
		est := m.EstimateCard(q)
		if est < prev-1e-6 {
			t.Fatalf("marginal not monotone at %d: %v < %v", v, est, prev)
		}
		prev = est
	}
	if prev < 780 || prev > 820 {
		t.Fatalf("full marginal %v, want ~800", prev)
	}
}

func TestAccuracyReasonable(t *testing.T) {
	tbl := testTable(2000)
	m := New(tbl, DefaultConfig())
	qs := workload.Generate(tbl, workload.GenConfig{Seed: 3, NumQueries: 150, MinPreds: 1, MaxPreds: 2, BoundedCol: -1})
	labeled := exec.Label(tbl, qs)
	var sum float64
	for _, lq := range labeled {
		sum += workload.QError(m.EstimateCard(lq.Query), float64(lq.Card))
	}
	if mean := sum / float64(len(labeled)); mean > 8 {
		t.Fatalf("DeepDB mean Q-Error %.3f", mean)
	}
}

func TestCorrelatedColumnsBeatIndependence(t *testing.T) {
	// b is a near-deterministic function of a; the SPN should capture much
	// of that, far better than assuming full independence would.
	tbl := testTable(3000)
	m := New(tbl, DefaultConfig())
	q := workload.Query{Preds: []workload.Predicate{
		{Col: 0, Op: workload.OpEq, Code: 0},
		{Col: 1, Op: workload.OpEq, Code: tbl.Cols[1].Codes.At(indexWhere(tbl, 0, 0))},
	}}
	act := float64(exec.Cardinality(tbl, q))
	est := m.EstimateCard(q)
	if workload.QError(est, act) > 20 {
		t.Fatalf("correlated pair q-error %.2f (est %.1f act %.1f)", workload.QError(est, act), est, act)
	}
}

// indexWhere returns the first row where column col has code value.
func indexWhere(t *relation.Table, col int, value int32) int {
	for r, c := range relation.DecodeCodes(t.Cols[col].Codes) {
		if c == value {
			return r
		}
	}
	return 0
}

func TestEstimatesNonNegativeProperty(t *testing.T) {
	tbl := testTable(500)
	m := New(tbl, DefaultConfig())
	f := func(c0, op0, v0, c1, op1, v1 uint8) bool {
		mk := func(c, op, v uint8) workload.Predicate {
			col := int(c) % tbl.NumCols()
			return workload.Predicate{
				Col:  col,
				Op:   workload.Op(op % workload.NumOps),
				Code: int32(int(v) % tbl.Cols[col].NumDistinct()),
			}
		}
		q := workload.Query{Preds: []workload.Predicate{mk(c0, op0, v0), mk(c1, op1, v1)}}
		est := m.EstimateCard(q)
		return est >= 0 && est <= float64(tbl.NumRows())*1.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStructureHasSumAndProduct(t *testing.T) {
	tbl := testTable(2000)
	m := New(tbl, DefaultConfig())
	var sums, products, leaves int
	var walk func(n node)
	walk = func(n node) {
		switch v := n.(type) {
		case *sum:
			sums++
			for _, c := range v.children {
				walk(c)
			}
		case *product:
			products++
			for _, c := range v.children {
				walk(c)
			}
		case *leaf:
			leaves++
		}
	}
	walk(m.root)
	if products == 0 || leaves == 0 {
		t.Fatalf("degenerate structure: sums=%d products=%d leaves=%d", sums, products, leaves)
	}
	if m.SizeBytes() <= 0 || m.Name() != "deepdb" {
		t.Fatal("metadata")
	}
}

func TestSampleRowsCap(t *testing.T) {
	tbl := testTable(5000)
	cfg := DefaultConfig()
	cfg.SampleRows = 500
	m := New(tbl, cfg)
	if got := m.EstimateCard(workload.Query{}); got < 4800 || got > 5200 {
		t.Fatalf("sampled build total mass: %v", got)
	}
}
