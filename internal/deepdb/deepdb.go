// Package deepdb implements a DeepDB-style baseline (Hilprecht et al., VLDB
// 2020): a relational sum-product network (RSPN) learned from the data.
// Structure learning alternates between product nodes (splitting columns
// into near-independent groups found by thresholded pairwise correlation) and
// sum nodes (splitting rows by 2-means clustering); leaves are per-column
// histograms. Selectivity inference is exact SPN evaluation of the
// conjunctive interval query. The conditional-independence assumption the
// product nodes introduce is precisely the accuracy limitation the paper
// cites for DeepDB (Problem 2).
package deepdb

import (
	"math"
	"math/rand"

	"duet/internal/relation"
	"duet/internal/workload"
)

// Config controls RSPN structure learning.
type Config struct {
	// MinRows stops row splitting: nodes with fewer rows factorize fully.
	MinRows int
	// CorrThreshold is the absolute Pearson correlation above which two
	// columns are considered dependent.
	CorrThreshold float64
	// SampleRows caps the rows used for structure learning (0 = all).
	SampleRows int
	Seed       int64
}

// DefaultConfig returns the thresholds used by DeepDB-style systems.
func DefaultConfig() Config {
	return Config{MinRows: 256, CorrThreshold: 0.3, SampleRows: 20000, Seed: 42}
}

// Model is an RSPN cardinality estimator.
type Model struct {
	table *relation.Table
	root  node
	size  int64
}

// node is an SPN node able to compute P(query intervals) over its scope.
type node interface {
	prob(ivs []workload.Interval) float64
	bytes() int64
}

// leaf is a single-column histogram with prefix sums for O(1) interval mass.
type leaf struct {
	col    int
	prefix []float64 // prefix[i] = mass of codes < i; len = ndv+1
}

func (l *leaf) prob(ivs []workload.Interval) float64 {
	iv := ivs[l.col]
	if iv.Empty() {
		return 0
	}
	hi := int(iv.Hi) + 1
	if hi >= len(l.prefix) {
		hi = len(l.prefix) - 1
	}
	lo := int(iv.Lo)
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return 0
	}
	return l.prefix[hi] - l.prefix[lo]
}

func (l *leaf) bytes() int64 { return int64(len(l.prefix)) * 8 }

// product multiplies children over disjoint column scopes.
type product struct{ children []node }

func (p *product) prob(ivs []workload.Interval) float64 {
	out := 1.0
	for _, c := range p.children {
		out *= c.prob(ivs)
		if out == 0 {
			return 0
		}
	}
	return out
}

func (p *product) bytes() int64 {
	var b int64
	for _, c := range p.children {
		b += c.bytes()
	}
	return b
}

// sum mixes children over disjoint row clusters.
type sum struct {
	children []node
	weights  []float64
}

func (s *sum) prob(ivs []workload.Interval) float64 {
	var out float64
	for i, c := range s.children {
		out += s.weights[i] * c.prob(ivs)
	}
	return out
}

func (s *sum) bytes() int64 {
	b := int64(len(s.weights)) * 8
	for _, c := range s.children {
		b += c.bytes()
	}
	return b
}

// New learns an RSPN for t.
func New(t *relation.Table, cfg Config) *Model {
	if cfg.MinRows < 2 {
		cfg.MinRows = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := make([]int32, t.NumRows())
	for i := range rows {
		rows[i] = int32(i)
	}
	if cfg.SampleRows > 0 && cfg.SampleRows < len(rows) {
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		rows = rows[:cfg.SampleRows]
	}
	scope := make([]int, t.NumCols())
	for i := range scope {
		scope[i] = i
	}
	m := &Model{table: t}
	m.root = build(t, rows, scope, cfg, rng, 0)
	m.size = m.root.bytes()
	return m
}

// Name identifies the estimator.
func (m *Model) Name() string { return "deepdb" }

// SizeBytes reports the synopsis size.
func (m *Model) SizeBytes() int64 { return m.size }

// EstimateCard evaluates the SPN on the query's intervals.
func (m *Model) EstimateCard(q workload.Query) float64 {
	ivs := q.ColumnIntervals(m.table)
	return m.root.prob(ivs) * float64(m.table.NumRows())
}

// build recursively constructs the SPN.
func build(t *relation.Table, rows []int32, scope []int, cfg Config, rng *rand.Rand, depth int) node {
	if len(scope) == 1 {
		return newLeaf(t, rows, scope[0])
	}
	if len(rows) < cfg.MinRows || depth > 24 {
		return factorize(t, rows, scope)
	}
	// Try a product split on independence structure.
	groups := independentGroups(t, rows, scope, cfg.CorrThreshold)
	if len(groups) > 1 {
		p := &product{}
		for _, g := range groups {
			p.children = append(p.children, build(t, rows, g, cfg, rng, depth+1))
		}
		return p
	}
	// Otherwise split rows with 2-means.
	a, b := cluster2(t, rows, scope, rng)
	if len(a) == 0 || len(b) == 0 {
		return factorize(t, rows, scope)
	}
	n := float64(len(rows))
	return &sum{
		children: []node{
			build(t, a, scope, cfg, rng, depth+1),
			build(t, b, scope, cfg, rng, depth+1),
		},
		weights: []float64{float64(len(a)) / n, float64(len(b)) / n},
	}
}

// newLeaf builds a smoothed histogram over rows for one column.
func newLeaf(t *relation.Table, rows []int32, col int) *leaf {
	ndv := t.Cols[col].NumDistinct()
	counts := make([]float64, ndv)
	codes := t.Cols[col].Codes
	for _, r := range rows {
		counts[codes.At(int(r))]++
	}
	// Laplace smoothing keeps unseen values from zeroing products.
	const alpha = 1e-3
	total := float64(len(rows)) + alpha*float64(ndv)
	prefix := make([]float64, ndv+1)
	for i, c := range counts {
		prefix[i+1] = prefix[i] + (c+alpha)/total
	}
	return &leaf{col: col, prefix: prefix}
}

// factorize returns a product of leaves (full independence over the scope).
func factorize(t *relation.Table, rows []int32, scope []int) node {
	p := &product{}
	for _, c := range scope {
		p.children = append(p.children, newLeaf(t, rows, c))
	}
	return p
}

// independentGroups partitions the scope into connected components of the
// thresholded |Pearson correlation| graph computed over rows.
func independentGroups(t *relation.Table, rows []int32, scope []int, threshold float64) [][]int {
	k := len(scope)
	// Column statistics.
	means := make([]float64, k)
	stds := make([]float64, k)
	vals := make([][]float64, k)
	for i, c := range scope {
		codes := t.Cols[c].Codes
		v := make([]float64, len(rows))
		var sum float64
		for j, r := range rows {
			v[j] = float64(codes.At(int(r)))
			sum += v[j]
		}
		mean := sum / float64(len(rows))
		var sq float64
		for j := range v {
			v[j] -= mean
			sq += v[j] * v[j]
		}
		means[i] = mean
		stds[i] = math.Sqrt(sq)
		vals[i] = v
	}
	// Union-find over correlated pairs.
	parent := make([]int, k)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if stds[i] == 0 || stds[j] == 0 {
				continue // constant column: independent of everything
			}
			var dot float64
			for r := range vals[i] {
				dot += vals[i][r] * vals[j][r]
			}
			corr := dot / (stds[i] * stds[j])
			if math.Abs(corr) >= threshold {
				parent[find(i)] = find(j)
			}
		}
	}
	byRoot := map[int][]int{}
	for i, c := range scope {
		r := find(i)
		byRoot[r] = append(byRoot[r], c)
	}
	groups := make([][]int, 0, len(byRoot))
	for i := 0; i < k; i++ { // deterministic order
		if find(i) == i {
			groups = append(groups, byRoot[i])
		}
	}
	return groups
}

// cluster2 splits rows into two clusters with a few Lloyd iterations of
// 2-means over NDV-normalized codes.
func cluster2(t *relation.Table, rows []int32, scope []int, rng *rand.Rand) (a, b []int32) {
	k := len(scope)
	feat := func(r int32, dst []float64) {
		for i, c := range scope {
			ndv := float64(t.Cols[c].NumDistinct() - 1)
			if ndv < 1 {
				ndv = 1
			}
			dst[i] = float64(t.Cols[c].Codes.At(int(r))) / ndv
		}
	}
	c0 := make([]float64, k)
	c1 := make([]float64, k)
	feat(rows[rng.Intn(len(rows))], c0)
	feat(rows[rng.Intn(len(rows))], c1)
	assign := make([]bool, len(rows)) // true -> cluster 1
	tmp := make([]float64, k)
	for iter := 0; iter < 8; iter++ {
		n0, n1 := 0, 0
		s0 := make([]float64, k)
		s1 := make([]float64, k)
		for ri, r := range rows {
			feat(r, tmp)
			var d0, d1 float64
			for i := range tmp {
				x0 := tmp[i] - c0[i]
				x1 := tmp[i] - c1[i]
				d0 += x0 * x0
				d1 += x1 * x1
			}
			if d1 < d0 {
				assign[ri] = true
				n1++
				for i := range tmp {
					s1[i] += tmp[i]
				}
			} else {
				assign[ri] = false
				n0++
				for i := range tmp {
					s0[i] += tmp[i]
				}
			}
		}
		if n0 == 0 || n1 == 0 {
			break
		}
		for i := range c0 {
			c0[i] = s0[i] / float64(n0)
			c1[i] = s1[i] / float64(n1)
		}
	}
	for ri, r := range rows {
		if assign[ri] {
			b = append(b, r)
		} else {
			a = append(a, r)
		}
	}
	return a, b
}
