// Package uae implements the UAE baseline (Wu & Cong, SIGMOD 2021): Naru's
// autoregressive model trained hybridly, using a differentiable relaxation
// of progressive sampling so the query Q-Error can be backpropagated.
//
// The original uses the Gumbel-Softmax trick; this reproduction uses the
// straight-through equivalent (hard in-range sample on the forward path,
// gradients routed through each step's masked probability mass), which
// preserves the two properties the paper measures: query supervision reaches
// the model, and hybrid training must retain activations for all s samples
// across all n sampling steps — the s× memory and compute blow-up that makes
// UAE OOM on the 100-column dataset (Table III).
package uae

import (
	"errors"
	"math/rand"
	"time"

	"duet/internal/naru"
	"duet/internal/nn"
	"duet/internal/relation"
	"duet/internal/tensor"
	"duet/internal/workload"
)

// Config describes a UAE model.
type Config struct {
	Naru naru.Config
	// TrainSamples is the progressive-sampling budget per training query;
	// the effective query batch is QueryBatch × TrainSamples rows, which is
	// the memory-cost driver the paper analyzes in subsection IV-D.
	TrainSamples int
	Lambda       float64
}

// DefaultConfig mirrors the paper's UAE setup with a reduced training
// sample count (the original's 2000 OOMs a 48 GB GPU).
func DefaultConfig() Config {
	return Config{Naru: naru.DefaultConfig(), TrainSamples: 200, Lambda: 0.1}
}

// Model is a UAE estimator. Estimation is identical to Naru's progressive
// sampling; only training differs.
type Model struct {
	*naru.Model
	cfg       Config
	peakBytes int64
}

// New builds an untrained UAE model.
func New(t *relation.Table, cfg Config) *Model {
	return &Model{Model: naru.New(t, cfg.Naru), cfg: cfg}
}

// Name identifies the estimator.
func (m *Model) Name() string { return "uae" }

// PeakTrainBytes reports the peak bytes of retained query-path activations
// observed during hybrid training — the quantity that makes UAE OOM.
func (m *Model) PeakTrainBytes() int64 { return m.peakBytes }

// ErrOOM is returned when hybrid training would exceed the configured
// memory budget, reproducing the paper's OOM entries without actually
// exhausting the machine.
var ErrOOM = errors.New("uae: hybrid training exceeds memory budget (OOM)")

// TrainConfig controls UAE hybrid training.
type TrainConfig struct {
	Epochs     int
	BatchSize  int
	LR         float64
	Workload   []workload.LabeledQuery
	QueryBatch int

	// MemLimitBytes bounds the retained query-path activations; exceeding
	// it aborts with ErrOOM (0 = unlimited). The Table III harness sets the
	// limit of the paper's 10 GB GPU.
	MemLimitBytes int64

	WildcardProb float64
	ClipNorm     float64
	Seed         int64
	OnEpoch      func(epoch int, s naru.EpochStats) bool
}

// DefaultTrainConfig returns UAE training defaults.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 20, BatchSize: 256, LR: 1e-3, QueryBatch: 8,
		WildcardProb: 0.25, ClipNorm: 16, Seed: 42}
}

// Train fits the model hybridly: per step, Naru's data cross-entropy plus
// λ × log(QErr) backpropagated through differentiable progressive sampling.
// Unlike Duet's single-forward query loss, every training query costs
// 2 × n_constrained forward passes of batch TrainSamples (forward, then
// re-forward per step during backprop) and retains all step inputs.
func Train(m *Model, cfg TrainConfig) ([]naru.EpochStats, error) {
	opt := nn.NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	hybrid := m.cfg.Lambda > 0 && len(cfg.Workload) > 0
	nRows := m.Table().NumRows()
	var hist []naru.EpochStats
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		start := time.Now()
		perm := rng.Perm(nRows)
		var lossSum float64
		var steps int
		for off := 0; off < nRows; off += cfg.BatchSize {
			end := off + cfg.BatchSize
			if end > nRows {
				end = nRows
			}
			rows := perm[off:end]
			nn.ZeroGrads(m.Params())
			lossSum += m.dataStep(rows, rng, cfg.WildcardProb)
			if hybrid {
				for i := 0; i < cfg.QueryBatch; i++ {
					lq := cfg.Workload[rng.Intn(len(cfg.Workload))]
					if err := m.queryStep(lq, cfg.MemLimitBytes, cfg.QueryBatch); err != nil {
						return hist, err
					}
				}
			}
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(m.Params(), cfg.ClipNorm)
			}
			opt.Step(m.Params())
			steps++
		}
		dur := time.Since(start)
		s := naru.EpochStats{Epoch: epoch, DataLoss: lossSum / float64(steps), Tuples: nRows}
		if sec := dur.Seconds(); sec > 0 {
			s.TuplesPerSec = float64(nRows) / sec
		}
		hist = append(hist, s)
		if cfg.OnEpoch != nil && !cfg.OnEpoch(epoch, s) {
			break
		}
	}
	return hist, nil
}

// dataStep is one unsupervised batch (same objective as Naru's Train).
func (m *Model) dataStep(rows []int, rng *rand.Rand, wildcardProb float64) float64 {
	codes := make([][]int32, len(rows))
	labels := make([][]int32, len(rows))
	for i, r := range rows {
		labels[i] = m.Table().RowCodes(r, nil)
		in := append([]int32(nil), labels[i]...)
		for c := range in {
			if rng.Float64() < wildcardProb {
				in[c] = -1
			}
		}
		codes[i] = in
	}
	net := m.Net()
	logits := net.Forward(m.BuildInput(codes))
	d := tensor.New(logits.Rows, logits.Cols)
	loss := nn.SoftmaxCE(logits, net.Out, labels, d)
	net.Backward(d)
	return loss
}

// queryStep backpropagates λ·log2(QErr+1) for one training query through
// straight-through progressive sampling. All step inputs and in-range masses
// are retained until the backward sweep completes; their footprint is
// tracked in peakBytes and checked against the memory budget.
func (m *Model) queryStep(lq workload.LabeledQuery, memLimit int64, queryBatch int) error {
	tbl := m.Table()
	net := m.Net()
	ivs := lq.Query.ColumnIntervals(tbl)
	cols := lq.Query.Columns()
	if len(cols) == 0 {
		return nil
	}
	for _, c := range cols {
		if ivs[c].Empty() {
			return nil
		}
	}
	s := m.cfg.TrainSamples
	rng := rand.New(rand.NewSource(int64(lq.Card)*2654435761 + 17))

	// Projected retained footprint: per step, the s×inTot input plus the
	// s-wide masses, for every query in the step's batch (the paper's
	// bs × s effective batch). Abort like the real system would.
	perQuery := int64(len(cols)) * int64(s) * int64(net.In.Tot+1) * 4
	// Retained layer activations during the per-step re-forward/backward:
	var actPerSample int64
	for _, h := range append([]int{net.In.Tot}, net.Out.Tot) {
		actPerSample += int64(h)
	}
	footprint := perQuery*int64(queryBatch) + actPerSample*int64(s)*4
	if footprint > m.peakBytes {
		m.peakBytes = footprint
	}
	if memLimit > 0 && footprint > memLimit {
		return ErrOOM
	}

	// Forward sweep: record every step's input, masses and probabilities.
	stepInputs := make([]*tensor.Matrix, len(cols))
	masses := make([][]float64, len(cols))
	x := tensor.New(s, net.In.Tot)
	for b := 0; b < s; b++ {
		row := x.Row(b)
		for i := 0; i < tbl.NumCols(); i++ {
			m.EncodeWildcardBlock(row, i)
		}
	}
	probsBuf := make([]float32, maxNDV(tbl))
	weights := make([]float64, s)
	for i := range weights {
		weights[i] = 1
	}
	for k, c := range cols {
		stepInputs[k] = x.Clone()
		logits := net.Forward(x)
		iv := ivs[c]
		masses[k] = make([]float64, s)
		for b := 0; b < s; b++ {
			seg := net.Out.Slice(logits.Row(b), c)
			probs := probsBuf[:len(seg)]
			nn.Softmax(probs, seg)
			var mass float64
			for v := iv.Lo; v <= iv.Hi; v++ {
				mass += float64(probs[v])
			}
			if mass < 1e-12 {
				mass = 1e-12
			}
			masses[k][b] = mass
			weights[b] *= mass
			u := rng.Float64() * mass
			var acc float64
			chosen := iv.Hi
			for v := iv.Lo; v <= iv.Hi; v++ {
				acc += float64(probs[v])
				if acc >= u {
					chosen = v
					break
				}
			}
			m.EncodeValueBlock(x.Row(b), c, chosen)
		}
	}
	var est float64
	for _, w := range weights {
		est += w
	}
	est = est / float64(s) * float64(tbl.NumRows())
	_, dEst := nn.QErrorLossGrad(est, float64(lq.Card), 1)
	dEst *= m.cfg.Lambda / float64(queryBatch)

	// Backward sweep: re-forward each step to restore caches, then inject
	// the gradient of its masked mass.
	total := float64(tbl.NumRows()) / float64(s)
	for k := len(cols) - 1; k >= 0; k-- {
		c := cols[k]
		iv := ivs[c]
		logits := net.Forward(stepInputs[k])
		dLogits := tensor.New(s, net.Out.Tot)
		for b := 0; b < s; b++ {
			// d est / d mass_kb = |T|/s · Π_{j≠k} mass_jb
			loo := 1.0
			for j := range cols {
				if j != k {
					loo *= masses[j][b]
				}
			}
			dMass := dEst * total * loo
			seg := net.Out.Slice(logits.Row(b), c)
			probs := probsBuf[:len(seg)]
			nn.Softmax(probs, seg)
			f := float32(masses[k][b])
			dSeg := net.Out.Slice(dLogits.Row(b), c)
			for v, p := range probs {
				in := float32(0)
				if int32(v) >= iv.Lo && int32(v) <= iv.Hi {
					in = 1
				}
				dSeg[v] += float32(dMass) * p * (in - f)
			}
		}
		net.Backward(dLogits)
	}
	return nil
}

func maxNDV(t *relation.Table) int {
	mx := 0
	for _, c := range t.Cols {
		if d := c.NumDistinct(); d > mx {
			mx = d
		}
	}
	return mx
}
