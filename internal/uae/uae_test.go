package uae

import (
	"errors"
	"testing"

	"duet/internal/exec"
	"duet/internal/naru"
	"duet/internal/relation"
	"duet/internal/workload"
)

func testTable(rows int) *relation.Table {
	return relation.Generate(relation.SynConfig{
		Name: "t", Rows: rows, Seed: 41,
		Cols: []relation.ColSpec{
			{Name: "a", NDV: 8, Skew: 1.4, Parent: -1},
			{Name: "b", NDV: 4, Skew: 0, Parent: 0, Noise: 0.1},
			{Name: "c", NDV: 20, Skew: 1.2, Parent: -1},
		},
	})
}

func smallConfig() Config {
	c := DefaultConfig()
	c.Naru.Hidden = []int{32, 32}
	c.Naru.Samples = 64
	c.TrainSamples = 32
	return c
}

func TestHybridTrainingImproves(t *testing.T) {
	tbl := testTable(300)
	qs := workload.Generate(tbl, workload.GenConfig{Seed: 42, NumQueries: 80, MinPreds: 1, MaxPreds: 2, BoundedCol: -1})
	labeled := exec.Label(tbl, qs)
	m := New(tbl, smallConfig())
	meanErr := func() float64 {
		m.SetSeed(7)
		var sum float64
		for _, lq := range labeled {
			sum += workload.QError(m.EstimateCard(lq.Query), float64(lq.Card))
		}
		return sum / float64(len(labeled))
	}
	before := meanErr()
	cfg := DefaultTrainConfig()
	cfg.Epochs = 6
	cfg.BatchSize = 128
	cfg.QueryBatch = 4
	cfg.Workload = labeled
	hist, err := Train(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 6 {
		t.Fatalf("epochs run: %d", len(hist))
	}
	after := meanErr()
	if after >= before {
		t.Fatalf("hybrid training did not help: %.3f -> %.3f", before, after)
	}
	if m.PeakTrainBytes() <= 0 {
		t.Fatal("peak memory not tracked")
	}
}

func TestMemoryBlowupAndOOM(t *testing.T) {
	tbl := relation.SynKDD(400, 1) // 100 columns: the regime where UAE OOMs
	qs := workload.Generate(tbl, workload.GenConfig{Seed: 1, NumQueries: 20, MinPreds: 8, MaxPreds: 12, BoundedCol: -1})
	labeled := exec.Label(tbl, qs)
	cfg2 := smallConfig()
	cfg2.TrainSamples = 256
	m := New(tbl, cfg2)
	tc := DefaultTrainConfig()
	tc.Epochs = 1
	tc.BatchSize = 400
	tc.QueryBatch = 8
	tc.Workload = labeled
	tc.MemLimitBytes = 1 << 20 // 1 MiB budget: must blow
	_, err := Train(m, tc)
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("expected ErrOOM, got %v", err)
	}
	if m.PeakTrainBytes() <= tc.MemLimitBytes {
		t.Fatalf("peak bytes %d should exceed the budget", m.PeakTrainBytes())
	}
}

func TestUAEName(t *testing.T) {
	m := New(testTable(50), smallConfig())
	if m.Name() != "uae" {
		t.Fatal("name")
	}
	if m.SizeBytes() <= 0 {
		t.Fatal("size")
	}
}

func TestDataOnlyFallback(t *testing.T) {
	// Without a workload UAE degenerates to Naru training and must not err.
	tbl := testTable(200)
	m := New(tbl, smallConfig())
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	cfg.BatchSize = 100
	hist, err := Train(m, cfg)
	if err != nil || len(hist) != 2 {
		t.Fatalf("err=%v epochs=%d", err, len(hist))
	}
	if hist[1].DataLoss >= hist[0].DataLoss {
		t.Fatal("data loss should decrease")
	}
	_ = naru.DefaultConfig()
}
