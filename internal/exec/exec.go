// Package exec computes exact query cardinalities by columnar scan. It is
// the ground-truth oracle for workload labelling and estimator evaluation.
package exec

import (
	"duet/internal/relation"
	"duet/internal/tensor"
	"duet/internal/workload"
)

// Cardinality returns the exact number of tuples in t satisfying q.
// Predicates are compiled to per-column code intervals; the scan checks the
// most selective interval first to maximize early exits.
func Cardinality(t *relation.Table, q workload.Query) int64 {
	ivs := q.ColumnIntervals(t)
	cols := constrainedBySelectivity(t, q, ivs)
	if len(cols) == 0 {
		return int64(t.NumRows())
	}
	for _, c := range cols {
		if ivs[c].Empty() {
			return 0
		}
	}
	var count int64
	n := t.NumRows()
rows:
	for r := 0; r < n; r++ {
		for _, c := range cols {
			v := t.Cols[c].Codes.At(r)
			if v < ivs[c].Lo || v > ivs[c].Hi {
				continue rows
			}
		}
		count++
	}
	return count
}

// Cardinalities labels all queries, scanning in parallel across queries.
func Cardinalities(t *relation.Table, qs []workload.Query) []int64 {
	out := make([]int64, len(qs))
	tensor.ParallelFor(len(qs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = Cardinality(t, qs[i])
		}
	})
	return out
}

// Label pairs each query with its exact cardinality.
func Label(t *relation.Table, qs []workload.Query) []workload.LabeledQuery {
	cards := Cardinalities(t, qs)
	out := make([]workload.LabeledQuery, len(qs))
	for i, q := range qs {
		out[i] = workload.LabeledQuery{Query: q, Card: cards[i]}
	}
	return out
}

// constrainedBySelectivity returns the constrained columns ordered from the
// narrowest interval (relative to its domain) to the widest.
func constrainedBySelectivity(t *relation.Table, q workload.Query, ivs []workload.Interval) []int {
	cols := q.Columns()
	sel := make([]float64, len(cols))
	for i, c := range cols {
		ndv := t.Cols[c].NumDistinct()
		sel[i] = float64(ivs[c].Width()) / float64(ndv)
	}
	// Insertion sort: the list is tiny.
	for i := 1; i < len(cols); i++ {
		for j := i; j > 0 && sel[j] < sel[j-1]; j-- {
			sel[j], sel[j-1] = sel[j-1], sel[j]
			cols[j], cols[j-1] = cols[j-1], cols[j]
		}
	}
	return cols
}
