package exec

import (
	"testing"
	"testing/quick"

	"duet/internal/relation"
	"duet/internal/workload"
)

func testTable(rows int, seed int64) *relation.Table {
	return relation.Generate(relation.SynConfig{
		Name: "t", Rows: rows, Seed: seed,
		Cols: []relation.ColSpec{
			{Name: "a", NDV: 10, Skew: 1.5, Parent: -1},
			{Name: "b", NDV: 5, Skew: 0, Parent: 0, Noise: 0.3},
			{Name: "c", NDV: 25, Skew: 1.2, Parent: -1},
		},
	})
}

// bruteForce checks predicates directly, without interval compilation.
func bruteForce(t *relation.Table, q workload.Query) int64 {
	var count int64
rows:
	for r := 0; r < t.NumRows(); r++ {
		for _, p := range q.Preds {
			if !p.Matches(t.Cols[p.Col].Codes.At(r)) {
				continue rows
			}
		}
		count++
	}
	return count
}

func TestCardinalityMatchesBruteForce(t *testing.T) {
	tbl := testTable(400, 1)
	qs := workload.Generate(tbl, workload.GenConfig{
		Seed: 3, NumQueries: 150, MinPreds: 1, MaxPreds: 3, BoundedCol: -1})
	for _, q := range qs {
		if got, want := Cardinality(tbl, q), bruteForce(tbl, q); got != want {
			t.Fatalf("query %v: got %d want %d", q, got, want)
		}
	}
}

func TestCardinalityProperty(t *testing.T) {
	tbl := testTable(200, 2)
	f := func(col0 uint8, op0 uint8, code0 uint8, col1 uint8, op1 uint8, code1 uint8) bool {
		mk := func(col, op, code uint8) workload.Predicate {
			c := int(col) % tbl.NumCols()
			return workload.Predicate{
				Col:  c,
				Op:   workload.Op(op % workload.NumOps),
				Code: int32(int(code) % tbl.Cols[c].NumDistinct()),
			}
		}
		q := workload.Query{Preds: []workload.Predicate{mk(col0, op0, code0), mk(col1, op1, code1)}}
		return Cardinality(tbl, q) == bruteForce(tbl, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyQueryReturnsAllRows(t *testing.T) {
	tbl := testTable(123, 3)
	if got := Cardinality(tbl, workload.Query{}); got != 123 {
		t.Fatalf("empty query: %d", got)
	}
}

func TestContradictionReturnsZero(t *testing.T) {
	tbl := testTable(100, 4)
	q := workload.Query{Preds: []workload.Predicate{
		{Col: 0, Op: workload.OpGt, Code: 5},
		{Col: 0, Op: workload.OpLt, Code: 3},
	}}
	if got := Cardinality(tbl, q); got != 0 {
		t.Fatalf("contradiction: %d", got)
	}
}

func TestCardinalitiesParallelMatchesSerial(t *testing.T) {
	tbl := testTable(300, 5)
	qs := workload.Generate(tbl, workload.GenConfig{
		Seed: 6, NumQueries: 64, MinPreds: 1, MaxPreds: 3, BoundedCol: -1})
	par := Cardinalities(tbl, qs)
	for i, q := range qs {
		if par[i] != Cardinality(tbl, q) {
			t.Fatalf("parallel mismatch at %d", i)
		}
	}
}

func TestLabel(t *testing.T) {
	tbl := testTable(100, 7)
	qs := workload.Generate(tbl, workload.GenConfig{
		Seed: 8, NumQueries: 10, MinPreds: 1, MaxPreds: 2, BoundedCol: -1})
	labeled := Label(tbl, qs)
	if len(labeled) != 10 {
		t.Fatalf("labeled %d", len(labeled))
	}
	for i, lq := range labeled {
		if lq.Card != Cardinality(tbl, qs[i]) {
			t.Fatal("label mismatch")
		}
	}
}
