package colstore

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"duet/internal/relation"
)

// testTable builds a table exercising every kind and two code widths: a
// low-NDV string column (uint8 codes), int and float columns, and a high-NDV
// int column that needs uint16 codes.
func testTable(tb testing.TB, rows int) *relation.Table {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	ints := make([]int64, rows)
	floats := make([]float64, rows)
	strs := make([]string, rows)
	wide := make([]int64, rows)
	for i := range ints {
		ints[i] = int64(rng.Intn(40) - 20)
		floats[i] = math.Round(rng.NormFloat64()*100) / 4
		strs[i] = fmt.Sprintf("cat-%02d", rng.Intn(9))
		wide[i] = int64(rng.Intn(1000))
	}
	return relation.NewTable("t", []*relation.Column{
		relation.NewIntColumn("a", ints),
		relation.NewFloatColumn("b", floats),
		relation.NewStringColumn("c", strs),
		relation.NewIntColumn("wide", wide),
	})
}

// sameTable compares name, kinds, dictionaries, every code, and CodeHist.
func sameTable(t *testing.T, want, got *relation.Table) {
	t.Helper()
	if got.Name != want.Name || got.NumCols() != want.NumCols() || got.NumRows() != want.NumRows() {
		t.Fatalf("shape mismatch: got %s, want %s", got.Stats(), want.Stats())
	}
	for ci := range want.Cols {
		wc, gc := want.Cols[ci], got.Cols[ci]
		if gc.Name != wc.Name || gc.Kind != wc.Kind || gc.NumDistinct() != wc.NumDistinct() {
			t.Fatalf("col %d header mismatch: %q/%v/%d vs %q/%v/%d",
				ci, gc.Name, gc.Kind, gc.NumDistinct(), wc.Name, wc.Kind, wc.NumDistinct())
		}
		for v := 0; v < wc.NumDistinct(); v++ {
			if gc.ValueString(int32(v)) != wc.ValueString(int32(v)) {
				t.Fatalf("col %q dict[%d]: got %q, want %q", wc.Name, v, gc.ValueString(int32(v)), wc.ValueString(int32(v)))
			}
		}
		for r := 0; r < wc.NumRows(); r++ {
			if gc.Codes.At(r) != wc.Codes.At(r) {
				t.Fatalf("col %q code[%d]: got %d, want %d", wc.Name, r, gc.Codes.At(r), wc.Codes.At(r))
			}
		}
		wh, gh := want.CodeHist(ci), got.CodeHist(ci)
		for v := range wh {
			if wh[v] != gh[v] {
				t.Fatalf("col %q hist[%d]: got %g, want %g", wc.Name, v, gh[v], wh[v])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	tbl := testTable(t, 5000)
	path := filepath.Join(t.TempDir(), "t.duetcol")
	if err := Write(path, tbl); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sameTable(t, tbl, s.Table)
	// The wide column crosses the uint8 boundary; make sure the width-minimal
	// choice actually varied across columns.
	if w := codeWidth(tbl.Cols[2].NumDistinct()); w != 1 {
		t.Fatalf("string column should pack to 1-byte codes, got %d", w)
	}
	if w := codeWidth(tbl.Cols[3].NumDistinct()); w != 2 {
		t.Fatalf("wide column should pack to 2-byte codes, got %d", w)
	}
}

func TestMappedMatchesFallback(t *testing.T) {
	tbl := testTable(t, 3000)
	path := filepath.Join(t.TempDir(), "t.duetcol")
	if err := Write(path, tbl); err != nil {
		t.Fatal(err)
	}
	mapped, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	t.Setenv(NoMmapEnv, "1")
	fallback, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fallback.Close()
	if fallback.Mapped() {
		t.Fatal("DUET_NO_MMAP=1 still produced a mapping")
	}
	sameTable(t, mapped.Table, fallback.Table)
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := testTable(t, 2000)
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "t.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := relation.WriteCSV(f, tbl); err != nil {
		t.Fatal(err)
	}
	f.Close()
	in, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := relation.LoadCSV(in, "t", true)
	in.Close()
	if err != nil {
		t.Fatal(err)
	}
	colPath := filepath.Join(dir, "t.duetcol")
	if err := Write(colPath, loaded); err != nil {
		t.Fatal(err)
	}
	s, err := Open(colPath)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sameTable(t, loaded, s.Table)
}

func TestTruncatedRejected(t *testing.T) {
	tbl := testTable(t, 1000)
	path := filepath.Join(t.TempDir(), "t.duetcol")
	if err := Write(path, tbl); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(data) - 1, len(data) / 2, headerSize + 3, 10} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(path)
		if err == nil {
			s.Close()
			t.Fatalf("opened a file truncated to %d bytes", cut)
		}
		if !strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "too short") {
			t.Fatalf("truncation to %d bytes: error %q names neither truncation nor shortness", cut, err)
		}
	}
}

func TestCorruptHeaderRejected(t *testing.T) {
	tbl := testTable(t, 1000)
	path := filepath.Join(t.TempDir(), "t.duetcol")
	if err := Write(path, tbl); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the checksummed header region (row count).
	data[33] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err == nil {
		s.Close()
		t.Fatal("opened a file with a corrupted header")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corruption error %q does not mention the checksum", err)
	}
}

func TestCorruptMetadataRejected(t *testing.T) {
	tbl := testTable(t, 500)
	path := filepath.Join(t.TempDir(), "t.duetcol")
	if err := Write(path, tbl); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff // inside the trailing JSON metadata
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err == nil {
		s.Close()
		t.Fatal("opened a file with corrupted metadata")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corruption error %q does not mention the checksum", err)
	}
}
