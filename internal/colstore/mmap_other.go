//go:build !unix

package colstore

// mapFile reports mmap as unsupported; Open falls back to reading the file
// into one aligned buffer.
func mapFile(path string) ([]byte, func() error, error) {
	return nil, nil, errNoMmapT{}
}
