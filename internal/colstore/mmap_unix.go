//go:build unix

package colstore

import (
	"os"
	"syscall"
)

// mapFile maps path read-only and shared. The returned bytes stay valid
// until the unmap func runs; the OS page cache backs them, so resident
// memory tracks the pages actually touched rather than the file size.
func mapFile(path string) (data []byte, unmap func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() // the mapping outlives the descriptor
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		// A zero-length mmap is an error on some kernels; the header check in
		// decode rejects the empty file with a better message.
		return []byte{}, func() error { return nil }, nil
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
