// Package colstore persists relation tables in a versioned on-disk columnar
// format (".duetcol", one file per table) designed to be consumed in place:
//
//	offset 0   magic "DUETCOL1" (the trailing digit is the format version)
//	offset 8   uint64 metaOff   — start of the JSON metadata section
//	offset 16  uint32 metaLen
//	offset 20  uint32 metaCRC   — CRC-32C of the metadata bytes
//	offset 24  uint64 fileSize  — expected total size; truncation detection
//	offset 32  uint64 nrows
//	offset 40  uint32 ncols
//	offset 44  uint32 headerCRC — CRC-32C of bytes [0, 44)
//	offset 48  zeros up to 64
//	offset 64  data sections, each 64-byte aligned
//	metaOff    JSON metadata (fileMeta) with per-column section offsets
//
// Per column the data sections are: the code array at the width the NDV
// needs (uint8/uint16/uint32, chosen so the largest code fits), the sorted
// dictionary (int64/float64 values raw little-endian; strings as a
// uint32 offset table plus a byte blob), and the normalized code-frequency
// histogram (float64 per distinct value) that drift detection consumes, so
// Table.CodeHist never has to scan a mapped column.
//
// Because every numeric section is 64-byte aligned and little-endian,
// Open can reinterpret code arrays, numeric dictionaries and histograms in
// place over the raw file bytes — via mmap on unix (the OS page cache then
// does the memory tiering for beyond-RAM tables) or over one os.ReadFile
// buffer as the pure-Go fallback (non-unix builds, or DUET_NO_MMAP=1).
// Only string dictionaries are materialized as Go values on open.
package colstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"unsafe"

	"duet/internal/relation"
)

// Magic identifies a .duetcol file; the trailing digit is the format version.
const Magic = "DUETCOL1"

const (
	headerSize = 64
	crcSize    = 44 // header bytes covered by headerCRC
	align      = 64
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// fileMeta is the JSON metadata section.
type fileMeta struct {
	Table string    `json:"table"`
	Cols  []colMeta `json:"cols"`
}

// colMeta locates one column's sections inside the file.
type colMeta struct {
	Name      string `json:"name"`
	Kind      uint8  `json:"kind"`
	NDV       int    `json:"ndv"`
	CodeWidth int    `json:"code_width"` // bytes per code: 1, 2 or 4
	CodesOff  int64  `json:"codes_off"`
	DictOff   int64  `json:"dict_off"`
	DictBlob  int64  `json:"dict_blob"` // string kind: byte length of the value blob after the offset table
	HistOff   int64  `json:"hist_off"`
}

// codeWidth returns the narrowest per-code byte width that fits every code of
// a dictionary with the given NDV (codes range over [0, ndv)).
func codeWidth(ndv int) int {
	switch {
	case ndv <= 1<<8:
		return 1
	case ndv <= 1<<16:
		return 2
	default:
		return 4
	}
}

func alignUp(off int64) int64 { return (off + align - 1) &^ (align - 1) }

// Write persists t at path in .duetcol format, atomically: the bytes are
// staged in a same-directory temp file and renamed into place, so a reader
// never observes a torn file and an existing mapped copy stays valid until
// its own Close.
func Write(path string, t *relation.Table) error {
	meta := fileMeta{Table: t.Name, Cols: make([]colMeta, len(t.Cols))}
	nrows := t.NumRows()
	// Lay out the data sections first (they start right after the header and
	// do not depend on the metadata length), then append the metadata.
	off := int64(headerSize)
	for i, c := range t.Cols {
		ndv := c.NumDistinct()
		cm := colMeta{Name: c.Name, Kind: uint8(c.Kind), NDV: ndv, CodeWidth: codeWidth(ndv)}
		cm.CodesOff = alignUp(off)
		off = cm.CodesOff + int64(nrows*cm.CodeWidth)
		cm.DictOff = alignUp(off)
		switch c.Kind {
		case relation.KindInt, relation.KindFloat:
			off = cm.DictOff + int64(8*ndv)
		case relation.KindString:
			for _, s := range c.Strs {
				cm.DictBlob += int64(len(s))
			}
			off = cm.DictOff + int64(4*(ndv+1)) + cm.DictBlob
		}
		cm.HistOff = alignUp(off)
		off = cm.HistOff + int64(8*ndv)
		meta.Cols[i] = cm
	}
	metaOff := alignUp(off)
	metaBytes, err := json.Marshal(&meta)
	if err != nil {
		return err
	}
	fileSize := metaOff + int64(len(metaBytes))

	buf := make([]byte, fileSize)
	copy(buf, Magic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(metaOff))
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(metaBytes)))
	binary.LittleEndian.PutUint32(buf[20:], crc32.Checksum(metaBytes, castagnoli))
	binary.LittleEndian.PutUint64(buf[24:], uint64(fileSize))
	binary.LittleEndian.PutUint64(buf[32:], uint64(nrows))
	binary.LittleEndian.PutUint32(buf[40:], uint32(len(t.Cols)))
	binary.LittleEndian.PutUint32(buf[44:], crc32.Checksum(buf[:crcSize], castagnoli))
	copy(buf[metaOff:], metaBytes)

	for i, c := range t.Cols {
		cm := &meta.Cols[i]
		writeCodes(buf[cm.CodesOff:], c.Codes, cm.CodeWidth)
		switch c.Kind {
		case relation.KindInt:
			dst := buf[cm.DictOff:]
			for j, v := range c.Ints {
				binary.LittleEndian.PutUint64(dst[8*j:], uint64(v))
			}
		case relation.KindFloat:
			dst := buf[cm.DictOff:]
			for j, v := range c.Floats {
				binary.LittleEndian.PutUint64(dst[8*j:], math.Float64bits(v))
			}
		case relation.KindString:
			offTab := buf[cm.DictOff:]
			blob := buf[cm.DictOff+int64(4*(cm.NDV+1)):]
			var bo uint32
			for j, s := range c.Strs {
				binary.LittleEndian.PutUint32(offTab[4*j:], bo)
				copy(blob[bo:], s)
				bo += uint32(len(s))
			}
			binary.LittleEndian.PutUint32(offTab[4*cm.NDV:], bo)
		}
		hist := buf[cm.HistOff:]
		for j, h := range tableHist(t, i) {
			binary.LittleEndian.PutUint64(hist[8*j:], math.Float64bits(h))
		}
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, path)
}

// tableHist computes column ci's histogram for packing.
func tableHist(t *relation.Table, ci int) []float64 { return t.CodeHist(ci) }

// writeCodes encodes a CodeArray at the given width into dst.
func writeCodes(dst []byte, codes relation.CodeArray, width int) {
	n := codes.Len()
	var buf [4096]int32
	w := 0
	for lo := 0; lo < n; lo += len(buf) {
		hi := lo + len(buf)
		if hi > n {
			hi = n
		}
		for _, code := range codes.AppendTo(buf[:0], lo, hi) {
			switch width {
			case 1:
				dst[w] = byte(code)
			case 2:
				binary.LittleEndian.PutUint16(dst[2*w:], uint16(code))
			default:
				binary.LittleEndian.PutUint32(dst[4*w:], uint32(code))
			}
			w++
		}
	}
}

// Store is an opened .duetcol file. Table's numeric dictionaries, histograms
// and code arrays alias the underlying bytes (mapped or one read buffer);
// the table must not be used after Close.
type Store struct {
	Table  *relation.Table
	path   string
	mapped bool // true when the bytes are an mmap, false for the read fallback
	data   []byte
	unmap  func() error
}

// Mapped reports whether the store reads through an mmap (false means the
// pure-Go os.ReadFile fallback loaded the file into one heap buffer).
func (s *Store) Mapped() bool { return s.mapped }

// Path returns the file the store was opened from.
func (s *Store) Path() string { return s.path }

// SizeBytes returns the on-disk (and mapped) size of the store.
func (s *Store) SizeBytes() int64 { return int64(len(s.data)) }

// Close releases the mapping (or the fallback buffer). The Table and every
// column read through it become invalid; callers must ensure no reader still
// holds the table — the registry's drain-safe swap provides that.
func (s *Store) Close() error {
	if s.unmap == nil {
		return nil
	}
	u := s.unmap
	s.unmap = nil
	s.data = nil
	return u()
}

// NoMmapEnv is the environment variable that forces the pure-Go read
// fallback even where mmap is available ("1" disables mapping).
const NoMmapEnv = "DUET_NO_MMAP"

// Open reads a .duetcol file and returns a Store whose Table serves every
// relation consumer (sampler, training, registry) directly from the file
// bytes. On unix the file is mapped read-only and shared, so resident memory
// is bounded by the touched pages; elsewhere — and under DUET_NO_MMAP=1 —
// the whole file is read once into memory. Both paths construct
// byte-identical tables.
func Open(path string) (*Store, error) {
	s := &Store{path: path}
	if os.Getenv(NoMmapEnv) != "1" {
		if data, unmap, err := mapFile(path); err == nil {
			s.data, s.unmap, s.mapped = data, unmap, true
		} else if !isNoMmap(err) {
			return nil, fmt.Errorf("colstore: map %s: %w", path, err)
		}
	}
	if s.data == nil {
		data, err := readAligned(path)
		if err != nil {
			return nil, err
		}
		s.data = data
		s.unmap = func() error { return nil }
	}
	t, err := decode(s.data)
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("colstore: %s: %w", path, err)
	}
	s.Table = t
	return s, nil
}

// errNoMmap marks platforms without a mapping implementation; Open falls
// back to readAligned silently.
type errNoMmapT struct{}

func (errNoMmapT) Error() string { return "mmap unsupported" }

func isNoMmap(err error) bool { _, ok := err.(errNoMmapT); return ok }

// readAligned loads the whole file into an 8-byte-aligned buffer (backed by
// a []uint64 allocation) so the same in-place reinterpretation the mapped
// path uses stays legal for int64/float64/uint32/uint16 sections.
func readAligned(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	words := make([]uint64, (size+7)/8)
	var buf []byte
	if len(words) > 0 {
		buf = unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	}
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// decode validates the header and metadata and builds the table over data.
func decode(data []byte) (*relation.Table, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("file too short (%d bytes) for a %s header", len(data), Magic)
	}
	if string(data[:8]) != Magic {
		return nil, fmt.Errorf("bad magic %q (want %q)", data[:8], Magic)
	}
	if got, want := crc32.Checksum(data[:crcSize], castagnoli), binary.LittleEndian.Uint32(data[44:]); got != want {
		return nil, fmt.Errorf("header checksum mismatch (got %08x, want %08x): torn or corrupted write", got, want)
	}
	fileSize := binary.LittleEndian.Uint64(data[24:])
	if fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("truncated: header records %d bytes, file has %d", fileSize, len(data))
	}
	metaOff := binary.LittleEndian.Uint64(data[8:])
	metaLen := binary.LittleEndian.Uint32(data[16:])
	if metaOff+uint64(metaLen) > uint64(len(data)) {
		return nil, fmt.Errorf("metadata section [%d, %d) out of bounds", metaOff, metaOff+uint64(metaLen))
	}
	metaBytes := data[metaOff : metaOff+uint64(metaLen)]
	if got, want := crc32.Checksum(metaBytes, castagnoli), binary.LittleEndian.Uint32(data[20:]); got != want {
		return nil, fmt.Errorf("metadata checksum mismatch (got %08x, want %08x)", got, want)
	}
	var meta fileMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, fmt.Errorf("metadata: %w", err)
	}
	nrows := int(binary.LittleEndian.Uint64(data[32:]))
	if ncols := int(binary.LittleEndian.Uint32(data[40:])); ncols != len(meta.Cols) {
		return nil, fmt.Errorf("header says %d columns, metadata has %d", ncols, len(meta.Cols))
	}
	cols := make([]*relation.Column, len(meta.Cols))
	for i := range meta.Cols {
		c, err := decodeColumn(data, &meta.Cols[i], nrows)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", meta.Cols[i].Name, err)
		}
		cols[i] = c
	}
	return relation.NewTable(meta.Table, cols), nil
}

// section bounds-checks [off, off+size) and returns it.
func section(data []byte, off, size int64) ([]byte, error) {
	if off < headerSize || size < 0 || off+size > int64(len(data)) {
		return nil, fmt.Errorf("section [%d, %d) out of bounds (file %d bytes)", off, off+size, len(data))
	}
	return data[off : off+size], nil
}

// view reinterprets a byte section as a []T in place. The write path aligns
// every section to 64 bytes and both open paths keep the base at least
// 8-byte aligned, so the cast is within Go's alignment rules for all used T.
func view[T any](data []byte, off int64, n int) ([]T, error) {
	var zero T
	esz := int64(unsafe.Sizeof(zero))
	sec, err := section(data, off, esz*int64(n))
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&sec[0])), n), nil
}

// decodeColumn builds one column over the file bytes.
func decodeColumn(data []byte, cm *colMeta, nrows int) (*relation.Column, error) {
	if cm.NDV > 0 && codeWidth(cm.NDV) != cm.CodeWidth {
		return nil, fmt.Errorf("code width %d does not fit NDV %d", cm.CodeWidth, cm.NDV)
	}
	c := &relation.Column{Name: cm.Name, Kind: relation.Kind(cm.Kind)}
	switch cm.CodeWidth {
	case 1:
		s, err := view[uint8](data, cm.CodesOff, nrows)
		if err != nil {
			return nil, err
		}
		c.Codes = relation.U8Codes(s)
	case 2:
		s, err := view[uint16](data, cm.CodesOff, nrows)
		if err != nil {
			return nil, err
		}
		c.Codes = relation.U16Codes(s)
	case 4:
		s, err := view[uint32](data, cm.CodesOff, nrows)
		if err != nil {
			return nil, err
		}
		c.Codes = relation.U32Codes(s)
	default:
		return nil, fmt.Errorf("unsupported code width %d", cm.CodeWidth)
	}
	switch c.Kind {
	case relation.KindInt:
		d, err := view[int64](data, cm.DictOff, cm.NDV)
		if err != nil {
			return nil, err
		}
		c.Ints = d
	case relation.KindFloat:
		d, err := view[float64](data, cm.DictOff, cm.NDV)
		if err != nil {
			return nil, err
		}
		c.Floats = d
	case relation.KindString:
		offs, err := view[uint32](data, cm.DictOff, cm.NDV+1)
		if err != nil {
			return nil, err
		}
		blob, err := section(data, cm.DictOff+int64(4*(cm.NDV+1)), cm.DictBlob)
		if err != nil {
			return nil, err
		}
		strs := make([]string, cm.NDV)
		for j := range strs {
			lo, hi := offs[j], offs[j+1]
			if lo > hi || int64(hi) > cm.DictBlob {
				return nil, fmt.Errorf("string dictionary entry %d has bad bounds [%d, %d)", j, lo, hi)
			}
			strs[j] = string(blob[lo:hi])
		}
		c.Strs = strs
	default:
		return nil, fmt.Errorf("unknown kind %d", cm.Kind)
	}
	hist, err := view[float64](data, cm.HistOff, cm.NDV)
	if err != nil {
		return nil, err
	}
	c.SetHist(hist)
	return c, nil
}
