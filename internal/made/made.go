// Package made implements MADE (Germain et al., 2015) and ResMADE masked
// autoregressive networks over per-column input/output blocks, the network
// family used by Naru, UAE and Duet.
//
// The input vector is partitioned into one block per table column (the
// column's value/predicate encoding); the output vector is partitioned into
// one block per column holding logits over that column's distinct values.
// Degree-based binary masks guarantee the autoregressive property: output
// block i depends only on input blocks j < i, so block 0 is the
// unconditional distribution P(C_0) and block i models P(C_i | inputs_<i).
package made

import (
	"fmt"
	"math/rand"

	"duet/internal/nn"
	"duet/internal/tensor"
)

// Config describes a MADE network.
type Config struct {
	InBlocks  []int // width of each column's input encoding block
	OutBlocks []int // width of each column's output block (its NDV)
	Hidden    []int // hidden layer widths; for Residual nets all must be equal
	Residual  bool  // build ResMADE: Hidden[k] pairs become residual blocks
	Seed      int64
}

// MADE is a masked autoregressive network.
type MADE struct {
	Cfg Config
	Net *nn.Sequential
	In  nn.Blocks // input block layout
	Out nn.Blocks // output (logit) block layout
}

// New builds the network, constructing degree-based masks. With N columns,
// input block j has degree j+1, hidden units cycle degrees 1..N-1, and
// output block j (degree j+1) connects to hidden units of strictly smaller
// degree; consequently output block 0 receives no input connections and is
// produced by bias alone, as required for the unconditional P(C_0).
func New(cfg Config) *MADE {
	n := len(cfg.InBlocks)
	if n == 0 || n != len(cfg.OutBlocks) {
		panic(fmt.Sprintf("made: bad block config in=%d out=%d", len(cfg.InBlocks), len(cfg.OutBlocks)))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := nn.NewBlocks(cfg.InBlocks)
	out := nn.NewBlocks(cfg.OutBlocks)

	inDeg := blockDegrees(cfg.InBlocks)
	outDeg := blockDegrees(cfg.OutBlocks)

	var layers []nn.Layer
	prevDeg := inDeg
	prevWidth := in.Tot
	if cfg.Residual {
		if len(cfg.Hidden) == 0 {
			panic("made: residual net needs at least one hidden width")
		}
		h := cfg.Hidden[0]
		for _, w := range cfg.Hidden {
			if w != h {
				panic("made: residual net requires equal hidden widths")
			}
		}
		hDeg := hiddenDegrees(h, n)
		// Input projection.
		layers = append(layers,
			nn.NewMaskedLinear(prevWidth, h, maskGE(prevDeg, hDeg), rng), nn.NewReLU())
		// One residual block per configured hidden layer.
		for range cfg.Hidden {
			inner := nn.NewSequential(
				nn.NewMaskedLinear(h, h, maskGE(hDeg, hDeg), rng),
				nn.NewReLU(),
				nn.NewMaskedLinear(h, h, maskGE(hDeg, hDeg), rng),
			)
			layers = append(layers, nn.NewResidual(inner), nn.NewReLU())
		}
		prevDeg, prevWidth = hDeg, h
	} else {
		for _, h := range cfg.Hidden {
			hDeg := hiddenDegrees(h, n)
			layers = append(layers,
				nn.NewMaskedLinear(prevWidth, h, maskGE(prevDeg, hDeg), rng), nn.NewReLU())
			prevDeg, prevWidth = hDeg, h
		}
	}
	layers = append(layers,
		nn.NewMaskedLinear(prevWidth, out.Tot, maskGT(prevDeg, outDeg), rng))

	return &MADE{Cfg: cfg, Net: nn.NewSequential(layers...), In: in, Out: out}
}

// blockDegrees expands per-block widths into a unit degree vector where every
// unit of block j has degree j+1.
func blockDegrees(blocks []int) []int {
	var deg []int
	for j, w := range blocks {
		for k := 0; k < w; k++ {
			deg = append(deg, j+1)
		}
	}
	return deg
}

// hiddenDegrees assigns degrees 1..n-1 cyclically to width units. With a
// single column there are no valid hidden degrees; units get degree 1 and the
// output mask disconnects them, leaving a bias-only unconditional model.
func hiddenDegrees(width, n int) []int {
	maxDeg := n - 1
	if maxDeg < 1 {
		maxDeg = 1
	}
	deg := make([]int, width)
	for i := range deg {
		deg[i] = 1 + i%maxDeg
	}
	return deg
}

// maskGE builds the in×out mask with M[i,o]=1 iff degOut[o] >= degIn[i]
// (input→hidden and hidden→hidden rule).
func maskGE(degIn, degOut []int) *tensor.Matrix {
	m := tensor.New(len(degIn), len(degOut))
	for i, di := range degIn {
		row := m.Row(i)
		for o, do := range degOut {
			if do >= di {
				row[o] = 1
			}
		}
	}
	return m
}

// maskGT builds the in×out mask with M[i,o]=1 iff degOut[o] > degIn[i]
// (hidden→output rule).
func maskGT(degIn, degOut []int) *tensor.Matrix {
	m := tensor.New(len(degIn), len(degOut))
	for i, di := range degIn {
		row := m.Row(i)
		for o, do := range degOut {
			if do > di {
				row[o] = 1
			}
		}
	}
	return m
}

// Forward runs the network on a batch of encoded inputs.
func (m *MADE) Forward(x *tensor.Matrix) *tensor.Matrix { return m.Net.Forward(x) }

// Backward backpropagates the logit gradient and returns the input gradient.
func (m *MADE) Backward(dOut *tensor.Matrix) *tensor.Matrix { return m.Net.Backward(dOut) }

// Params returns all trainable parameters.
func (m *MADE) Params() []*nn.Param { return m.Net.Params() }

// NumCols returns the number of columns (blocks).
func (m *MADE) NumCols() int { return m.In.N() }
