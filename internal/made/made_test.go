package made

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"duet/internal/nn"
	"duet/internal/tensor"
)

func smallConfig(residual bool) Config {
	return Config{
		InBlocks:  []int{3, 2, 4},
		OutBlocks: []int{5, 3, 7},
		Hidden:    []int{16, 16},
		Residual:  residual,
		Seed:      42,
	}
}

// TestAutoregressiveProperty is the central MADE invariant: output block i
// must not change when any input block j >= i changes.
func TestAutoregressiveProperty(t *testing.T) {
	for _, residual := range []bool{false, true} {
		m := New(smallConfig(residual))
		rng := rand.New(rand.NewSource(7))
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			x := tensor.New(1, m.In.Tot)
			tensor.RandUniform(x, 1, rng)
			base := m.Forward(x).Clone()
			// Perturb a random input block j and check outputs < j unchanged
			// and outputs at block <= j-? Specifically outputs i <= j must be
			// unchanged for i <= j (output i depends only on inputs < i).
			j := r.Intn(m.In.N())
			x2 := x.Clone()
			for k := m.In.Off[j]; k < m.In.Off[j]+m.In.Len[j]; k++ {
				x2.Data[k] += float32(1 + r.Float64())
			}
			out2 := m.Forward(x2)
			for i := 0; i <= j; i++ {
				a := m.Out.Slice(base.Row(0), i)
				b := m.Out.Slice(out2.Row(0), i)
				for k := range a {
					if a[k] != b[k] {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Fatalf("residual=%v: %v", residual, err)
		}
	}
}

func TestFirstBlockUnconditional(t *testing.T) {
	m := New(smallConfig(false))
	rng := rand.New(rand.NewSource(8))
	x1 := tensor.New(1, m.In.Tot)
	x2 := tensor.New(1, m.In.Tot)
	tensor.RandUniform(x1, 1, rng)
	tensor.RandUniform(x2, 1, rng)
	o1 := m.Forward(x1).Clone()
	o2 := m.Forward(x2)
	a := m.Out.Slice(o1.Row(0), 0)
	b := m.Out.Slice(o2.Row(0), 0)
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("block 0 depends on input")
		}
	}
}

func TestLastInputBlockUnused(t *testing.T) {
	// No output may depend on the last column's input block.
	m := New(smallConfig(true))
	rng := rand.New(rand.NewSource(9))
	x := tensor.New(1, m.In.Tot)
	tensor.RandUniform(x, 1, rng)
	base := m.Forward(x).Clone()
	last := m.In.N() - 1
	for k := m.In.Off[last]; k < m.In.Tot; k++ {
		x.Data[k] = 99
	}
	out := m.Forward(x)
	if !base.Equal(out) {
		t.Fatal("outputs depend on last input block")
	}
}

func TestSingleColumnModelIsBiasOnly(t *testing.T) {
	m := New(Config{InBlocks: []int{4}, OutBlocks: []int{6}, Hidden: []int{8}, Seed: 1})
	rng := rand.New(rand.NewSource(10))
	x1 := tensor.New(1, 4)
	x2 := tensor.New(1, 4)
	tensor.RandUniform(x1, 1, rng)
	tensor.RandUniform(x2, 1, rng)
	if !m.Forward(x1).Clone().Equal(m.Forward(x2)) {
		t.Fatal("single-column model must ignore its input")
	}
}

func TestGradcheckThroughCE(t *testing.T) {
	m := New(Config{InBlocks: []int{2, 2}, OutBlocks: []int{3, 3}, Hidden: []int{8}, Seed: 2})
	rng := rand.New(rand.NewSource(11))
	x := tensor.New(2, m.In.Tot)
	tensor.RandUniform(x, 1, rng)
	labels := [][]int32{{0, 2}, {1, 1}}
	loss := func() float64 {
		return nn.SoftmaxCE(m.Forward(x), m.Out, labels, nil)
	}
	nn.ZeroGrads(m.Params())
	logits := m.Forward(x)
	d := tensor.New(2, m.Out.Tot)
	nn.SoftmaxCE(logits, m.Out, labels, d)
	m.Backward(d)
	// Masked-out weight entries are held at zero by init + gradient masking,
	// so forward passes do not apply the mask; finite differences on those
	// entries are meaningless. Collect each param's mask to skip them.
	masks := make(map[*nn.Param]*tensor.Matrix)
	var collect func(l nn.Layer)
	collect = func(l nn.Layer) {
		switch v := l.(type) {
		case *nn.MaskedLinear:
			masks[v.Weight] = v.Mask
		case *nn.Sequential:
			for _, inner := range v.Layers {
				collect(inner)
			}
		case *nn.Residual:
			collect(v.Inner)
		}
	}
	collect(m.Net)
	const eps = 1e-2
	for _, p := range m.Params() {
		mask := masks[p]
		for i := 0; i < len(p.W.Data); i += 7 { // sample every 7th weight
			if mask != nil && mask.Data[i] == 0 {
				continue
			}
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := loss()
			p.W.Data[i] = orig - eps
			lm := loss()
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := float64(p.G.Data[i])
			if math.Abs(num-ana) > 5e-2*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v numeric %v", p.Name, i, ana, num)
			}
		}
	}
}

func TestTrainingLearnsDependentColumns(t *testing.T) {
	// Two columns where col1 == col0 deterministically: after training, the
	// model should put most conditional mass on the matching value.
	m := New(Config{InBlocks: []int{3, 3}, OutBlocks: []int{3, 3}, Hidden: []int{32, 32}, Seed: 3})
	rng := rand.New(rand.NewSource(12))
	opt := nn.NewAdam(5e-3)
	batch := 32
	x := tensor.New(batch, m.In.Tot)
	labels := make([][]int32, batch)
	d := tensor.New(batch, m.Out.Tot)
	for step := 0; step < 300; step++ {
		x.Zero()
		for b := 0; b < batch; b++ {
			v := int32(rng.Intn(3))
			x.Set(b, int(v), 1) // one-hot col0
			x.Set(b, 3+int(v), 1)
			labels[b] = []int32{v, v}
		}
		nn.ZeroGrads(m.Params())
		logits := m.Forward(x)
		d.Zero()
		nn.SoftmaxCE(logits, m.Out, labels, d)
		m.Backward(d)
		opt.Step(m.Params())
	}
	// Check P(C1=v | C0=v) is dominant.
	probe := tensor.New(1, m.In.Tot)
	for v := 0; v < 3; v++ {
		probe.Zero()
		probe.Set(0, v, 1)
		logits := m.Forward(probe)
		seg := m.Out.Slice(logits.Row(0), 1)
		probs := make([]float32, 3)
		nn.Softmax(probs, seg)
		if probs[v] < 0.8 {
			t.Fatalf("P(C1=%d|C0=%d)=%v, model failed to learn dependency", v, v, probs[v])
		}
	}
}

func TestParamCount(t *testing.T) {
	m := New(smallConfig(false))
	if nn.NumParams(m.Params()) == 0 {
		t.Fatal("no parameters")
	}
	if nn.SizeBytes(m.Params()) != int64(nn.NumParams(m.Params()))*4 {
		t.Fatal("SizeBytes mismatch")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{InBlocks: []int{1, 2}, OutBlocks: []int{1}})
}
