// Plan: a packed-sparse, restriction-aware inference compilation of a MADE
// network. MADE's degree masks zero roughly half of every weight matrix, and
// Duet's masked product (Algorithm 3) reads only the logit blocks of columns
// a query actually constrains — but the generic layer stack multiplies every
// zero and computes every block anyway. A Plan snapshots the current weights
// into a form that skips both:
//
//   - hidden units are re-ordered by autoregressive degree (a private layout
//     inside the plan; inputs and logits keep their public layout), which
//     gathers each unit's structurally-allowed connections into one tight
//     contiguous span — the kernel streams only real weights, with no
//     branches beyond the zero-activation skip;
//   - the output projection becomes, per block, a dense prefix of the
//     degree-sorted hidden units, and Forward computes only the blocks each
//     row needs.
//
// Like the fused MPSN built by Merge, planned results match the generic
// layer stack up to floating-point summation order (the degree sort changes
// the order in which a logit's contributions are added); they are bitwise
// deterministic and independent of batch composition, because every kernel
// processes rows independently in a fixed order. A Plan is a snapshot:
// weights updated by training are not reflected; rebuild after training.
// Forward is safe for concurrent use only via external serialization.
//
// PlanConfig{Quantize: true} builds the plan with int8 weights instead of
// float32: every packed span (and every hidden row of an output slab) stores
// symmetric int8 codes plus one float32 scale (tensor.QuantizeI8S), and
// Forward runs the fused dequantize-accumulate kernel (tensor.SaxpyI8) with
// the activation×scale product folded into alpha. Weight memory shrinks
// close to 4x and the kernel streams a quarter of the bytes; results are an
// approximation of the f32 plan (the trend gate bounds the q-error delta),
// but remain deterministic and batch-composition independent.
package made

import (
	"fmt"
	"sort"

	"duet/internal/nn"
	"duet/internal/tensor"
)

// PlanConfig selects how NewPlan compiles the weights.
type PlanConfig struct {
	// Quantize stores weights as per-span int8 codes with float32 scales
	// instead of float32, trading ≤ one quantization step of weight
	// precision per element for ~4x smaller resident spans.
	Quantize bool
}

// Plan is a compiled inference path for one MADE network. Build with NewPlan,
// run with Forward.
type Plan struct {
	out       nn.Blocks
	trunk     []planLayer
	proj      *packedOutput
	logits    *tensor.Matrix // reusable output buffer
	quantized bool
}

// planLayer is one compiled trunk stage.
type planLayer interface {
	forward(x *tensor.Matrix) *tensor.Matrix
	weightBytes() int
}

// NewPlan compiles the network's current weights.
func NewPlan(m *MADE, cfg PlanConfig) *Plan {
	layers := m.Net.Layers
	if len(layers) == 0 {
		panic("made: empty network")
	}
	last, ok := layers[len(layers)-1].(*nn.MaskedLinear)
	if !ok {
		panic(fmt.Sprintf("made: final layer is %T, expected *nn.MaskedLinear", layers[len(layers)-1]))
	}
	p := &Plan{out: m.Out, logits: &tensor.Matrix{}, quantized: cfg.Quantize}
	trunk, trunkOrder := compileStack(layers[:len(layers)-1], nil, nil, cfg.Quantize)
	p.trunk = trunk
	p.proj = packOutput(&last.Linear, m.Out, trunkOrder, cfg.Quantize)
	return p
}

// Quantized reports whether the plan stores int8 weights.
func (p *Plan) Quantized() bool { return p.quantized }

// WeightBytes returns the resident bytes of the plan's weight payloads
// (packed spans, output slabs, scales and biases; excludes span metadata
// and activation buffers). It is the number operators compare across
// quantized and f32 plans.
func (p *Plan) WeightBytes() int {
	total := 0
	for _, l := range p.trunk {
		total += l.weightBytes()
	}
	for i := range p.proj.blocks {
		blk := &p.proj.blocks[i]
		total += 4*len(blk.w) + len(blk.wq) + 4*len(blk.scale) + 4*len(blk.bias)
	}
	return total
}

// compileStack compiles a trunk layer list. rowOrder is the layout of the
// stack's input buffer (nil = natural). forceCols, when non-nil, pins the
// column order of the stack's final re-ordering layer (residual branches
// must end in the layout they started in, so the skip add lines up). It
// returns the compiled stack and the layout its output is in.
func compileStack(layers []nn.Layer, rowOrder, forceCols []int32, quant bool) ([]planLayer, []int32) {
	out := make([]planLayer, 0, len(layers))
	// Find the last layer that re-orders columns, so forceCols lands on it.
	pinIdx := -1
	for i, l := range layers {
		switch l.(type) {
		case *nn.MaskedLinear, *nn.Linear, *nn.Residual:
			pinIdx = i
		}
	}
	if pinIdx < 0 && forceCols != nil {
		panic("made: cannot pin the layout of a stack with no linear layer")
	}
	colOrder := rowOrder
	for i, l := range layers {
		var pin []int32
		if i == pinIdx {
			pin = forceCols
		}
		switch l := l.(type) {
		case *nn.MaskedLinear:
			pl := packLinear(&l.Linear, colOrder, pin, quant)
			colOrder = pl.cols
			out = append(out, pl)
		case *nn.Linear:
			pl := packLinear(l, colOrder, pin, quant)
			colOrder = pl.cols
			out = append(out, pl)
		case *nn.ReLU:
			out = append(out, reluInPlace{})
		case *nn.Residual:
			inner, ok := l.Inner.(*nn.Sequential)
			if !ok {
				panic(fmt.Sprintf("made: residual inner is %T, expected *nn.Sequential", l.Inner))
			}
			// The skip connection adds the branch output to its input, so
			// the branch must come back in the layout it was given; an
			// explicit outer pin propagates inward.
			want := colOrder
			if pin != nil {
				want = pin
			}
			if want == nil {
				want = identityOrder(innerOutWidth(inner))
			}
			compiled, _ := compileStack(inner.Layers, colOrder, want, quant)
			out = append(out, &residualPlan{inner: compiled, out: &tensor.Matrix{}})
			colOrder = want
		default:
			panic(fmt.Sprintf("made: cannot compile layer %T", l))
		}
	}
	return out, colOrder
}

func innerOutWidth(s *nn.Sequential) int {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		switch l := s.Layers[i].(type) {
		case *nn.MaskedLinear:
			return l.Out
		case *nn.Linear:
			return l.Out
		}
	}
	panic("made: residual branch has no linear layer")
}

func identityOrder(n int) []int32 {
	ord := make([]int32, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	return ord
}

// ----- packed trunk linear -----

// packedLinear is a span-packed snapshot of a Linear/MaskedLinear with its
// output units re-ordered so each input unit's allowed outputs form one
// contiguous span. Exactly one of w (float32 spans) and wq (int8 codes with
// one scale per input row's span) is populated, chosen at pack time.
type packedLinear struct {
	inW, outW int
	cols      []int32 // output layout: position p holds original unit cols[p]
	start     []int32 // per input row: first output position of its span
	wOff      []int32 // per input row: offset into w/wq; len inW+1
	w         []float32
	wq        []int8    // quantized spans; same offsets as w
	scale     []float32 // per input row: dequant scale of its span
	bias      []float32 // re-ordered; nil when the layer has none
	out       *tensor.Matrix
}

func (p *packedLinear) weightBytes() int {
	return 4*len(p.w) + len(p.wq) + 4*len(p.scale) + 4*len(p.bias)
}

// packLinear snapshots l. rowOrder is the layout of the incoming activation
// buffer (nil = natural); colOrder pins the output layout (nil = sort units
// by connectivity extent so spans are tight). quant selects int8 spans.
func packLinear(l *nn.Linear, rowOrder, colOrder []int32, quant bool) *packedLinear {
	W := l.Weight.W
	if rowOrder == nil {
		rowOrder = identityOrder(l.In)
	}
	if colOrder == nil {
		colOrder = sortBySupport(W, rowOrder)
	}
	p := &packedLinear{inW: l.In, outW: l.Out, cols: colOrder, out: &tensor.Matrix{}}
	p.start = make([]int32, l.In)
	p.wOff = make([]int32, l.In+1)
	row := make([]float32, l.Out) // layer row in output layout
	for a, k := range rowOrder {
		orig := W.Row(int(k))
		for pcol, j := range colOrder {
			row[pcol] = orig[j]
		}
		lo, hi := 0, len(row)
		for lo < hi && row[lo] == 0 {
			lo++
		}
		for hi > lo && row[hi-1] == 0 {
			hi--
		}
		p.start[a] = int32(lo)
		p.w = append(p.w, row[lo:hi]...)
		p.wOff[a+1] = int32(len(p.w))
	}
	if l.Bias != nil {
		p.bias = make([]float32, l.Out)
		for pcol, j := range colOrder {
			p.bias[pcol] = l.Bias.W.Data[j]
		}
	}
	if quant {
		p.wq = make([]int8, len(p.w))
		p.scale = make([]float32, l.In)
		for a := 0; a < l.In; a++ {
			lo, hi := p.wOff[a], p.wOff[a+1]
			p.scale[a] = tensor.QuantizeI8S(p.wq[lo:hi], p.w[lo:hi])
		}
		p.w = nil // drop the f32 copy; wq+scale are the resident weights
	}
	return p
}

// sortBySupport orders output units by how deep into the (already ordered)
// input their connectivity reaches, stably: for MADE degree masks this is
// exactly the degree sort that makes every span contiguous.
func sortBySupport(W *tensor.Matrix, rowOrder []int32) []int32 {
	support := make([]int, W.Cols)
	for a, k := range rowOrder {
		row := W.Row(int(k))
		for j, v := range row {
			if v != 0 {
				support[j] = a + 1
			}
		}
	}
	ord := identityOrder(W.Cols)
	sort.SliceStable(ord, func(x, y int) bool { return support[ord[x]] < support[ord[y]] })
	return ord
}

func (p *packedLinear) forward(x *tensor.Matrix) *tensor.Matrix {
	out := p.out.Resize(x.Rows, p.outW)
	quant := p.wq != nil
	tensor.ParallelFor(x.Rows, 8, func(rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			xRow := x.Row(r)
			dst := out.Row(r)
			for j := range dst {
				dst[j] = 0
			}
			if quant {
				for k, av := range xRow {
					if av == 0 {
						continue
					}
					wq := p.wq[p.wOff[k]:p.wOff[k+1]]
					if len(wq) == 0 {
						continue
					}
					// One rounding for activation×scale, then the fused
					// dequantize-accumulate kernel.
					tensor.SaxpyI8(av*p.scale[k], wq, dst[p.start[k]:])
				}
			} else {
				for k, av := range xRow {
					if av == 0 {
						continue
					}
					w := p.w[p.wOff[k]:p.wOff[k+1]]
					if len(w) == 0 {
						continue
					}
					tensor.Saxpy(av, w, dst[p.start[k]:])
				}
			}
			if p.bias != nil {
				for j, bv := range p.bias {
					dst[j] += bv
				}
			}
		}
	})
	return out
}

// ----- in-place ReLU -----

type reluInPlace struct{}

func (reluInPlace) forward(x *tensor.Matrix) *tensor.Matrix {
	for i, v := range x.Data {
		x.Data[i] = max(v, 0)
	}
	return x
}

func (reluInPlace) weightBytes() int { return 0 }

// ----- residual block -----

type residualPlan struct {
	inner []planLayer
	out   *tensor.Matrix
}

func (p *residualPlan) forward(x *tensor.Matrix) *tensor.Matrix {
	fx := x
	for _, l := range p.inner {
		fx = l.forward(fx)
	}
	out := p.out.Resize(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = v + fx.Data[i]
	}
	return out
}

func (p *residualPlan) weightBytes() int {
	total := 0
	for _, l := range p.inner {
		total += l.weightBytes()
	}
	return total
}

// ----- packed output projection -----

// outBlock is one output block's packed weights. In the degree-sorted hidden
// layout its contributing units are a prefix [0, cut), so the weights are a
// dense cut×width slab streamed linearly. Exactly one of w and wq holds the
// slab; wq carries one scale per hidden row.
type outBlock struct {
	off, width int
	cut        int
	w          []float32 // cut*width
	wq         []int8    // quantized slab; same layout
	scale      []float32 // per hidden row t < cut: dequant scale
	bias       []float32 // the block's bias slice
}

type packedOutput struct {
	blocks []outBlock
}

// packOutput snapshots the output projection block by block, rows in the
// trunk's output layout. quant selects int8 slabs.
func packOutput(l *nn.Linear, out nn.Blocks, rowOrder []int32, quant bool) *packedOutput {
	W := l.Weight.W
	if rowOrder == nil {
		rowOrder = identityOrder(l.In)
	}
	p := &packedOutput{blocks: make([]outBlock, out.N())}
	for b := 0; b < out.N(); b++ {
		blk := &p.blocks[b]
		blk.off, blk.width = out.Off[b], out.Len[b]
		cut := 0
		for a, k := range rowOrder {
			row := W.Row(int(k))[blk.off : blk.off+blk.width]
			for _, v := range row {
				if v != 0 {
					cut = a + 1
					break
				}
			}
		}
		blk.cut = cut
		blk.w = make([]float32, 0, cut*blk.width)
		for _, k := range rowOrder[:cut] {
			blk.w = append(blk.w, W.Row(int(k))[blk.off:blk.off+blk.width]...)
		}
		if l.Bias != nil {
			blk.bias = append([]float32(nil), l.Bias.W.Data[blk.off:blk.off+blk.width]...)
		}
		if quant {
			blk.wq = make([]int8, len(blk.w))
			blk.scale = make([]float32, cut)
			for t := 0; t < cut; t++ {
				blk.scale[t] = tensor.QuantizeI8S(blk.wq[t*blk.width:(t+1)*blk.width], blk.w[t*blk.width:(t+1)*blk.width])
			}
			blk.w = nil
		}
	}
	return p
}

// forward computes the requested blocks row-major; logits segments of blocks
// not requested are left untouched.
func (p *packedOutput) forward(h *tensor.Matrix, needed [][]int32, logits *tensor.Matrix) {
	tensor.ParallelFor(h.Rows, 4, func(rlo, rhi int) {
		for r := rlo; r < rhi; r++ {
			hRow := h.Row(r)
			dst := logits.Row(r)
			for _, b := range needed[r] {
				blk := &p.blocks[b]
				seg := dst[blk.off : blk.off+blk.width]
				for j := range seg {
					seg[j] = 0
				}
				width := blk.width
				if blk.wq != nil {
					for t := 0; t < blk.cut; t++ {
						av := hRow[t]
						if av == 0 {
							continue
						}
						tensor.SaxpyI8(av*blk.scale[t], blk.wq[t*width:(t+1)*width], seg)
					}
				} else {
					for t := 0; t < blk.cut; t++ {
						av := hRow[t]
						if av == 0 {
							continue
						}
						tensor.Saxpy(av, blk.w[t*width:(t+1)*width], seg)
					}
				}
				if blk.bias != nil {
					for j, bv := range blk.bias {
						seg[j] += bv
					}
				}
			}
		}
	})
}

// Forward runs the plan on a batch. needed[r] lists the output blocks to
// compute for row r, ascending; segments of blocks not requested hold
// unspecified values. The returned matrix is owned by the plan and valid
// until the next Forward. Rows are processed independently in a fixed
// order, so results are bitwise independent of batch composition.
func (p *Plan) Forward(x *tensor.Matrix, needed [][]int32) *tensor.Matrix {
	h := x
	for _, l := range p.trunk {
		h = l.forward(h)
	}
	logits := p.logits.Resize(x.Rows, p.out.Tot)
	p.proj.forward(h, needed, logits)
	return logits
}
