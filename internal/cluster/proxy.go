package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"duet/internal/api"
	"duet/internal/obs"
)

// Config assembles a proxy over a replica fleet.
type Config struct {
	// Members are the replicas' base URLs, e.g. "http://10.0.0.1:8080".
	Members []string
	// Replication is how many replicas serve each model (R). Clamped to the
	// member count; default 2.
	Replication int
	// VNodes per member on the placement ring; default DefaultVNodes.
	VNodes int
	// Health tunes member probing.
	Health HealthConfig
	// Timeout bounds each forwarded request; default 30s.
	Timeout time.Duration
	// OnHealthChange, when non-nil, observes member mark-down/mark-up flips.
	OnHealthChange func(addr string, healthy bool)
	// Obs, when non-nil, registers the proxy's counters (fan-out, failover,
	// mark-down, forward latency) and serves them at /v1/metrics.
	Obs *obs.Registry
	// Tracer, when non-nil, traces forwarded requests (joining a client's
	// X-Duet-Trace or minting one) and serves the ring at /v1/debug/traces.
	Tracer *obs.Tracer
	// Log, when non-nil, reports member health flips; nil uses slog.Default.
	Log *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ on the proxy.
	Pprof bool
}

// Proxy is the thin stateless routing tier: it owns no models, keeps no
// per-request state beyond counters, and can be restarted freely. Placement
// is pure — any proxy instance over the same member list computes the same
// ring — so running several proxies needs no coordination.
type Proxy struct {
	cfg   Config
	ring  *Ring
	check *Checker

	client *http.Client
	start  time.Time

	met proxyMetrics // the routing counters; /v1/stats and /v1/metrics read the same instruments
	log *slog.Logger
}

// NewProxy validates the config, builds the ring, and starts health probing.
// Call Close to stop the prober.
func NewProxy(cfg Config) (*Proxy, error) {
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.Replication > len(cfg.Members) {
		cfg.Replication = len(cfg.Members)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	ring, err := NewRing(cfg.Members, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:    cfg,
		ring:   ring,
		client: &http.Client{Timeout: cfg.Timeout},
		start:  time.Now(),
		met:    newProxyMetrics(cfg.Obs),
		log:    cfg.Log,
	}
	for _, m := range cfg.Members {
		p.met.healthy.With(m).Set(1) // probing starts optimistic: everyone in rotation
	}
	p.check = NewChecker(cfg.Members, cfg.Health, p.onHealthChange)
	p.check.Start()
	return p, nil
}

// onHealthChange records every member flip — counter, gauge, structured log —
// then relays to the configured callback.
func (p *Proxy) onHealthChange(addr string, healthy bool) {
	if healthy {
		p.met.healthFlip.With(addr, "up").Inc()
		p.met.healthy.With(addr).Set(1)
		p.logger().Info("member back in rotation", "member", addr)
	} else {
		p.met.healthFlip.With(addr, "down").Inc()
		p.met.healthy.With(addr).Set(0)
		p.logger().Warn("member marked down", "member", addr)
	}
	if p.cfg.OnHealthChange != nil {
		p.cfg.OnHealthChange(addr, healthy)
	}
}

func (p *Proxy) logger() *slog.Logger {
	if p.log != nil {
		return p.log
	}
	return slog.Default()
}

// Close stops the health prober.
func (p *Proxy) Close() { p.check.Stop() }

// Ring exposes the placement ring (for tests and the cluster endpoint).
func (p *Proxy) Ring() *Ring { return p.ring }

// Owners returns a model's replica set in preference order.
func (p *Proxy) Owners(model string) []string { return p.ring.Owners(model, p.cfg.Replication) }

// Handler routes the proxy's endpoints: the forwarding data plane
// (/v1/estimate, /v1/ingest, /v1/feedback), the rollout control plane, and
// the fleet views (/v1/healthz, /v1/stats, /v1/models, /v1/cluster). Legacy
// unversioned aliases forward like their /v1 twins.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", p.estimate)
	mux.HandleFunc("POST /estimate", p.estimate)
	mux.HandleFunc("POST /v1/ingest", p.primaryOnly("/v1/ingest"))
	mux.HandleFunc("POST /ingest", p.primaryOnly("/v1/ingest"))
	mux.HandleFunc("POST /v1/feedback", p.primaryOnly("/v1/feedback"))
	mux.HandleFunc("POST /feedback", p.primaryOnly("/v1/feedback"))
	mux.HandleFunc("POST /v1/models/{name}/rollout", p.rollout)
	mux.HandleFunc("GET /v1/models", p.models)
	mux.HandleFunc("GET /models", p.models)
	mux.HandleFunc("GET /v1/healthz", p.healthz)
	mux.HandleFunc("GET /healthz", p.healthz)
	mux.HandleFunc("GET /v1/stats", p.stats)
	mux.HandleFunc("GET /stats", p.stats)
	mux.HandleFunc("GET /v1/cluster", p.cluster)
	if p.cfg.Obs != nil {
		mux.Handle("GET /v1/metrics", p.cfg.Obs.Handler())
	}
	if p.cfg.Tracer != nil {
		mux.HandleFunc("GET /v1/debug/traces", p.traces)
		mux.HandleFunc("GET /v1/debug/traces/{id}", p.traceByID)
	}
	if p.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return api.WithRequestID(api.WithTracing(p.cfg.Tracer, "proxy", api.WithHTTPMetrics(p.cfg.Obs, mux)))
}

// routeBody is the slice of an estimate/ingest/feedback body the proxy needs
// for placement: the model name, or a query to hash when the model is
// inferred by the replica's router.
type routeBody struct {
	Model   string   `json:"model"`
	Query   string   `json:"query"`
	Queries []string `json:"queries"`
}

// routingKey picks the placement key: the model name when the client names
// one, else the first query text. Keying inferred-model requests by query
// text keeps repeats of the same expression on the same replica, so the
// fleet's result caches stay warm even without a model name.
func (b routeBody) routingKey() string {
	switch {
	case b.Model != "":
		return b.Model
	case b.Query != "":
		return b.Query
	case len(b.Queries) > 0:
		return b.Queries[0]
	default:
		return ""
	}
}

// estimate forwards to the key's owners in preference order, skipping
// marked-down members and failing over on transport errors or 502/503 —
// estimates are idempotent, so a retry on the next replica is safe. Other
// statuses (including 429 sheds and 4xx client errors) relay as-is.
func (p *Proxy) estimate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		api.WriteError(w, r, http.StatusBadRequest, fmt.Errorf("read request: %w", err), nil)
		return
	}
	var rb routeBody
	if err := json.Unmarshal(body, &rb); err != nil {
		api.WriteError(w, r, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err), nil)
		return
	}
	key := rb.routingKey()
	if key == "" {
		api.WriteError(w, r, http.StatusBadRequest, fmt.Errorf(`provide exactly one of "query" or "queries"`), nil)
		return
	}
	owners := p.Owners(key)
	tried := 0
	last := ""
	for _, addr := range p.inRotation(owners) {
		if tried > 0 {
			p.met.failovers.Inc()
		}
		tried++
		last = addr
		if p.forward(w, r, addr, "/v1/estimate", body) {
			return
		}
	}
	p.met.rejected.Inc()
	if last != "" {
		// Attribute the shed to the last replica tried, so a 503 in a client
		// log points at a concrete member instead of an anonymous fleet.
		w.Header().Set(ReplicaHeader, last)
	}
	api.WriteError(w, r, http.StatusServiceUnavailable,
		fmt.Errorf("no replica for key %q is reachable (owners %v)", key, owners),
		map[string]any{"owners": owners, "tried": tried})
}

// primaryOnly forwards a mutating request to the model's first healthy
// owner, without failover: ingest and feedback append state, so blind
// retries could double-apply them.
func (p *Proxy) primaryOnly(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			api.WriteError(w, r, http.StatusBadRequest, fmt.Errorf("read request: %w", err), nil)
			return
		}
		var rb routeBody
		if err := json.Unmarshal(body, &rb); err != nil {
			api.WriteError(w, r, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err), nil)
			return
		}
		if rb.Model == "" {
			api.WriteError(w, r, http.StatusBadRequest, fmt.Errorf(`"model" is required`), nil)
			return
		}
		owners := p.Owners(rb.Model)
		rotation := p.inRotation(owners)
		if len(rotation) == 0 {
			p.met.rejected.Inc()
			api.WriteError(w, r, http.StatusServiceUnavailable,
				fmt.Errorf("no replica for model %q is reachable", rb.Model),
				map[string]any{"owners": owners})
			return
		}
		if !p.forward(w, r, rotation[0], path, body) {
			p.met.rejected.Inc()
			w.Header().Set(ReplicaHeader, rotation[0])
			api.WriteError(w, r, http.StatusBadGateway,
				fmt.Errorf("primary owner %s did not answer", rotation[0]), nil)
		}
	}
}

// inRotation filters the owner preference list down to members currently
// marked healthy. When every owner is down, the full list is returned — a
// probe race may be stale, and trying a "down" replica yields a concrete
// error instead of a guess.
func (p *Proxy) inRotation(owners []string) []string {
	healthy := make([]string, 0, len(owners))
	for _, o := range owners {
		if p.check.Healthy(o) {
			healthy = append(healthy, o)
		}
	}
	if len(healthy) == 0 {
		return owners
	}
	return healthy
}

// ReplicaHeader names the replica that answered a forwarded request — or,
// on a proxy-origin 502/503, the last member the proxy tried — so every
// response (including sheds) is attributable to a concrete member.
const ReplicaHeader = "X-Duet-Replica"

// forward relays one request to a replica. It reports true when a response
// was written (success or a relayable error) and false when the replica is
// unreachable or draining (502/503), i.e. the caller may fail over. The
// trace id rides the X-Duet-Trace header so the replica's spans join the
// same trace, and each attempt is a "forward" span in the proxy's ring.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, addr, path string, body []byte) bool {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, addr+path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.RequestIDHeader, r.Header.Get(api.RequestIDHeader))
	if id := r.Header.Get(obs.TraceHeader); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	tr := obs.FromContext(r.Context())
	timed := p.met.timed || tr != nil
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	resp, err := p.client.Do(req)
	if timed {
		d := time.Since(t0)
		if p.met.timed {
			p.met.forwardSec.With(addr).Observe(d.Seconds())
		}
		status := "unreachable"
		if err == nil {
			status = strconv.Itoa(resp.StatusCode)
		}
		tr.AddSpan("forward", t0, d, "member", addr, "status", status)
	}
	if err != nil {
		p.met.errors.With(addr).Inc()
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable {
		p.met.errors.With(addr).Inc()
		io.Copy(io.Discard, resp.Body)
		return false
	}
	p.met.forwarded.Inc()
	p.met.fanout.With(addr).Inc()
	for _, h := range []string{"Content-Type", "Retry-After", "Deprecation", "Link"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(ReplicaHeader, addr)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// rolloutRequest drives a rolling version install across a model's owners.
// Source (optional) names the node serving the artifact; it defaults to the
// model's first healthy owner, which is where lifecycle retrains run.
type rolloutRequest struct {
	Version int    `json:"version"`
	Source  string `json:"source"`
}

type rolloutResult struct {
	Addr   string `json:"addr"`
	Status string `json:"status"` // "installed", "source", or "failed: ..."
}

// rollout installs one model version across its replica set, one node at a
// time — each peer pulls the artifact from the source and drain-swaps it,
// so at every instant all but one replica serve traffic and in-flight
// estimates complete on the generation they started on.
func (p *Proxy) rollout(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req rolloutRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		api.WriteError(w, r, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err), nil)
		return
	}
	if req.Version <= 0 {
		api.WriteError(w, r, http.StatusBadRequest, fmt.Errorf(`a positive "version" is required`), nil)
		return
	}
	owners := p.Owners(name)
	source := req.Source
	if source == "" {
		rotation := p.inRotation(owners)
		if len(rotation) == 0 {
			api.WriteError(w, r, http.StatusServiceUnavailable,
				fmt.Errorf("no healthy owner to source model %q from", name), nil)
			return
		}
		source = rotation[0]
	}
	results := make([]rolloutResult, 0, len(owners))
	failed := 0
	for _, addr := range owners {
		if addr == source {
			results = append(results, rolloutResult{Addr: addr, Status: "source"})
			continue
		}
		if err := p.pullOn(r, addr, name, source, req.Version); err != nil {
			results = append(results, rolloutResult{Addr: addr, Status: "failed: " + err.Error()})
			failed++
			continue
		}
		results = append(results, rolloutResult{Addr: addr, Status: "installed"})
	}
	out := map[string]any{"model": name, "version": req.Version, "source": source, "results": results}
	if failed > 0 {
		out["failed"] = failed
	}
	api.WriteJSON(w, out)
}

// pullOn asks one peer to pull and install an artifact version.
func (p *Proxy) pullOn(r *http.Request, addr, name, source string, version int) error {
	body, _ := json.Marshal(map[string]any{"source": source, "version": version})
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		addr+"/v1/models/"+name+"/pull", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// models merges the fleet's model listings into a placement view: each model
// name with its owner preference list, so a client can see where everything
// lives without querying replicas one by one.
func (p *Proxy) models(w http.ResponseWriter, r *http.Request) {
	names := map[string]bool{}
	for _, addr := range p.healthyMembers() {
		var out struct {
			Models []struct {
				Name string `json:"name"`
			} `json:"models"`
		}
		if err := p.getJSON(r, addr+"/v1/models", &out); err != nil {
			continue
		}
		for _, m := range out.Models {
			names[m.Name] = true
		}
	}
	type placement struct {
		Name   string   `json:"name"`
		Owners []string `json:"owners"`
	}
	list := make([]placement, 0, len(names))
	for n := range names {
		list = append(list, placement{Name: n, Owners: p.Owners(n)})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	api.WriteJSON(w, map[string]any{"models": list})
}

// healthz reports the proxy's own liveness plus every member's probe state.
// The proxy is "ok" while at least one member is in rotation, "degraded"
// otherwise — it still answers, but estimates will shed.
func (p *Proxy) healthz(w http.ResponseWriter, _ *http.Request) {
	snapshot := p.check.Snapshot()
	status := "degraded"
	for _, m := range snapshot {
		if m.Healthy {
			status = "ok"
			break
		}
	}
	api.WriteJSON(w, map[string]any{
		"status":   status,
		"role":     "proxy",
		"members":  snapshot,
		"uptime_s": int64(time.Since(p.start).Seconds()),
	})
}

// stats reports the proxy's routing counters and each healthy member's own
// /v1/stats payload, keyed by address.
func (p *Proxy) stats(w http.ResponseWriter, r *http.Request) {
	members := map[string]json.RawMessage{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, addr := range p.healthyMembers() {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			var raw json.RawMessage
			if err := p.getJSON(r, addr+"/v1/stats", &raw); err != nil {
				return
			}
			mu.Lock()
			members[addr] = raw
			mu.Unlock()
		}(addr)
	}
	wg.Wait()
	api.WriteJSON(w, map[string]any{
		"proxy": map[string]any{
			"forwarded": p.met.forwarded.Value(),
			"failovers": p.met.failovers.Value(),
			"rejected":  p.met.rejected.Value(),
		},
		"members": members,
	})
}

// cluster reports the ring configuration and membership.
func (p *Proxy) cluster(w http.ResponseWriter, _ *http.Request) {
	api.WriteJSON(w, map[string]any{
		"members":     p.ring.Members(),
		"replication": p.cfg.Replication,
		"health":      p.check.Snapshot(),
	})
}

func (p *Proxy) healthyMembers() []string {
	out := make([]string, 0, len(p.cfg.Members))
	for _, m := range p.cfg.Members {
		if p.check.Healthy(m) {
			out = append(out, m)
		}
	}
	return out
}

// getJSON fetches one member endpoint into v.
func (p *Proxy) getJSON(r *http.Request, url string, v any) error {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
