package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"duet/internal/api"
	"duet/internal/obs"
)

// This file is the fleet's trace aggregation plane. Each process keeps its
// own bounded ring of finished traces; one request leaves fragments of the
// same trace id in several rings (the proxy's forward span, the owning
// replica's route + engine stages). The proxy stitches those fragments back
// into a single ordered view, so an operator reads one timeline instead of
// fetching N rings by hand.

// traceSourceProxy names the proxy's own ring in stitched output.
const traceSourceProxy = "proxy"

// mergedSpan is one span in a stitched trace, annotated with the process it
// was recorded on. OffsetUS is rebased onto the stitched trace's start (the
// earliest source start), so the global ordering survives the merge.
type mergedSpan struct {
	Source     string            `json:"source"`
	Name       string            `json:"name"`
	OffsetUS   int64             `json:"offset_us"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// stitchedTrace is one trace id merged across every ring that held a
// fragment of it. Partial reports that at least one fleet member could not be
// consulted (marked down or fetch failed), so spans may be missing — the
// merge degrades instead of failing.
type stitchedTrace struct {
	TraceID    string       `json:"trace_id"`
	Start      time.Time    `json:"start"`
	DurationUS int64        `json:"duration_us"`
	Slow       bool         `json:"slow,omitempty"`
	Partial    bool         `json:"partial"`
	Sources    []string     `json:"sources"`
	Spans      []mergedSpan `json:"spans"`
}

// sourcedSnapshot pairs a ring snapshot with the process it came from.
type sourcedSnapshot struct {
	source string
	snap   obs.TraceSnapshot
}

// collectTrace gathers every fragment of one trace id: the proxy's own ring
// plus a concurrent fan-out to each member's /v1/debug/traces/{id}. A member
// that is marked down is skipped (partial); a member whose fetch fails is
// partial too; a clean 404 is an authoritative "not here" and is not.
func (p *Proxy) collectTrace(r *http.Request, id string) (frags []sourcedSnapshot, partial bool) {
	if snap, ok := p.cfg.Tracer.Get(id); ok {
		frags = append(frags, sourcedSnapshot{source: traceSourceProxy, snap: snap})
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, addr := range p.cfg.Members {
		if !p.check.Healthy(addr) {
			partial = true
			continue
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			snap, ok, err := p.fetchMemberTrace(r, addr, id)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				partial = true
				return
			}
			if ok {
				frags = append(frags, sourcedSnapshot{source: addr, snap: snap})
			}
		}(addr)
	}
	wg.Wait()
	return frags, partial
}

// fetchMemberTrace fetches one member's ring entry for a trace id. The bool
// reports presence; a 404 is (false, nil) — the member answered, the trace
// just never finished there.
func (p *Proxy) fetchMemberTrace(r *http.Request, addr, id string) (obs.TraceSnapshot, bool, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, addr+"/v1/debug/traces/"+id, nil)
	if err != nil {
		return obs.TraceSnapshot{}, false, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return obs.TraceSnapshot{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return obs.TraceSnapshot{}, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return obs.TraceSnapshot{}, false, fmt.Errorf("%s: %s", addr, resp.Status)
	}
	var snap obs.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return obs.TraceSnapshot{}, false, err
	}
	return snap, true, nil
}

// stitch merges trace fragments into one ordered view. Every span is rebased
// onto the earliest fragment start, so proxy forward spans and replica engine
// spans interleave on a single timeline (modulo cross-host clock skew, which
// is the operator's to read with the source column in hand).
func stitch(id string, frags []sourcedSnapshot, partial bool) stitchedTrace {
	st := stitchedTrace{TraceID: id, Partial: partial}
	if len(frags) == 0 {
		return st
	}
	earliest := frags[0].snap.Start
	for _, f := range frags[1:] {
		if f.snap.Start.Before(earliest) {
			earliest = f.snap.Start
		}
	}
	st.Start = earliest
	for _, f := range frags {
		base := f.snap.Start.Sub(earliest).Microseconds()
		if end := base + f.snap.DurationUS; end > st.DurationUS {
			st.DurationUS = end
		}
		st.Slow = st.Slow || f.snap.Slow
		st.Sources = append(st.Sources, f.source)
		for _, sp := range f.snap.Spans {
			st.Spans = append(st.Spans, mergedSpan{
				Source:     f.source,
				Name:       sp.Name,
				OffsetUS:   base + sp.OffsetUS,
				DurationUS: sp.DurationUS,
				Attrs:      sp.Attrs,
			})
		}
	}
	sort.Strings(st.Sources)
	sort.SliceStable(st.Spans, func(i, j int) bool { return st.Spans[i].OffsetUS < st.Spans[j].OffsetUS })
	return st
}

// traceByID serves GET /v1/debug/traces/{id}: the stitched fleet-wide view
// of one trace.
func (p *Proxy) traceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	frags, partial := p.collectTrace(r, id)
	w.Header().Set("Content-Type", "application/json")
	if len(frags) == 0 {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]any{"error": "trace not found", "partial": partial})
		return
	}
	json.NewEncoder(w).Encode(stitch(id, frags, partial))
}

// traces serves GET /v1/debug/traces on the proxy. Without parameters it
// stays the proxy's own ring (the single-process contract every replica also
// serves). With ?slow=1 it becomes the fleet view: each healthy member's
// slow-marked traces are collected, fragments sharing a trace id are
// stitched, and the result is ordered worst first.
func (p *Proxy) traces(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("slow") != "1" {
		p.cfg.Tracer.Handler().ServeHTTP(w, r)
		return
	}
	type listing struct {
		Traces []obs.TraceSnapshot `json:"traces"`
	}
	bySource := map[string][]obs.TraceSnapshot{
		traceSourceProxy: p.cfg.Tracer.Slow(),
	}
	partial := false
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, addr := range p.cfg.Members {
		if !p.check.Healthy(addr) {
			partial = true
			continue
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			var out listing
			err := p.getJSON(r, addr+"/v1/debug/traces?slow=1", &out)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				partial = true
				return
			}
			bySource[addr] = out.Traces
		}(addr)
	}
	wg.Wait()

	byID := map[string][]sourcedSnapshot{}
	var order []string
	for _, source := range sortedKeys(bySource) {
		for _, snap := range bySource[source] {
			if _, seen := byID[snap.TraceID]; !seen {
				order = append(order, snap.TraceID)
			}
			byID[snap.TraceID] = append(byID[snap.TraceID], sourcedSnapshot{source: source, snap: snap})
		}
	}
	stitched := make([]stitchedTrace, 0, len(order))
	for _, id := range order {
		stitched = append(stitched, stitch(id, byID[id], partial))
	}
	sort.SliceStable(stitched, func(i, j int) bool { return stitched[i].DurationUS > stitched[j].DurationUS })
	api.WriteJSON(w, map[string]any{"traces": stitched, "partial": partial})
}

func sortedKeys(m map[string][]obs.TraceSnapshot) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
