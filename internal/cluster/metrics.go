package cluster

import (
	"duet/internal/obs"
)

// proxyMetrics holds the proxy's counters as obs instruments — like the
// serve engine, the instruments ARE the proxy's operational state: /v1/stats
// and /v1/metrics read the same atomics. Detached (but live) when no
// registry is configured.
type proxyMetrics struct {
	timed bool // a registry is wired; pay for forward-latency clocks

	forwarded  *obs.Counter      // total, across members
	failovers  *obs.Counter      // replica fan-out past the primary owner
	rejected   *obs.Counter      // no reachable owner: request shed with 503
	fanout     *obs.CounterVec   // forwards per member
	errors     *obs.CounterVec   // failed forward attempts per member
	forwardSec *obs.HistogramVec // forward round-trip per member
	healthFlip *obs.CounterVec   // member, to ("down" | "up")
	healthy    *obs.GaugeVec     // 1 while the member is in rotation
}

func newProxyMetrics(o *obs.Registry) proxyMetrics {
	return proxyMetrics{
		timed: o != nil,
		forwarded: o.Counter("duet_proxy_forwarded_total",
			"Requests forwarded to any replica."),
		failovers: o.Counter("duet_proxy_failovers_total",
			"Estimates answered by a non-primary owner after the primary failed."),
		rejected: o.Counter("duet_proxy_rejected_total",
			"Requests rejected because no owner replica was reachable."),
		fanout: o.CounterVec("duet_proxy_member_forwarded_total",
			"Requests forwarded, by member.", "member"),
		errors: o.CounterVec("duet_proxy_member_errors_total",
			"Forward attempts that failed (transport error or upstream 502/503), by member.", "member"),
		forwardSec: o.HistogramVec("duet_proxy_forward_seconds",
			"Forward round-trip wall time, by member.", obs.LatencyBuckets, "member"),
		healthFlip: o.CounterVec("duet_proxy_health_changes_total",
			"Health-state transitions, by member and direction.", "member", "to"),
		healthy: o.GaugeVec("duet_proxy_member_healthy",
			"1 while the member is in rotation, 0 while marked down.", "member"),
	}
}
