package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestCheckerMarkDownAndUp drives a member through healthy -> down -> back
// up and asserts the hysteresis thresholds gate both transitions.
func TestCheckerMarkDownAndUp(t *testing.T) {
	var ok atomic.Bool
	ok.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/healthz" {
			http.NotFound(w, r)
			return
		}
		if !ok.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()

	flips := make(chan bool, 8)
	c := NewChecker([]string{srv.URL}, HealthConfig{
		Interval:  20 * time.Millisecond,
		Timeout:   200 * time.Millisecond,
		FailAfter: 2,
		RiseAfter: 2,
	}, func(_ string, healthy bool) { flips <- healthy })
	c.Start()
	defer c.Stop()

	if !c.Healthy(srv.URL) {
		t.Fatal("members must start in rotation")
	}

	ok.Store(false)
	select {
	case h := <-flips:
		if h {
			t.Fatal("first flip should be a mark-down")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("member never marked down")
	}
	if c.Healthy(srv.URL) {
		t.Fatal("member still in rotation after mark-down")
	}

	ok.Store(true)
	select {
	case h := <-flips:
		if !h {
			t.Fatal("second flip should be a mark-up")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("member never marked back up")
	}
	if !c.Healthy(srv.URL) {
		t.Fatal("member not back in rotation after mark-up")
	}

	snap := c.Snapshot()
	if len(snap) != 1 || !snap[0].Healthy || snap[0].Addr != srv.URL {
		t.Fatalf("snapshot: %+v", snap)
	}
}

// TestCheckerSingleFailureIsForgiven: one lost probe must not trip the
// FailAfter=2 hysteresis.
func TestCheckerSingleFailureIsForgiven(t *testing.T) {
	var failOnce atomic.Bool
	failOnce.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failOnce.Swap(false) {
			http.Error(w, "blip", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()

	var flipped atomic.Bool
	c := NewChecker([]string{srv.URL}, HealthConfig{
		Interval:  20 * time.Millisecond,
		Timeout:   200 * time.Millisecond,
		FailAfter: 2,
		RiseAfter: 2,
	}, func(string, bool) { flipped.Store(true) })
	c.Start()
	defer c.Stop()

	time.Sleep(200 * time.Millisecond)
	if flipped.Load() {
		t.Fatal("a single failed probe tripped the mark-down")
	}
	if !c.Healthy(srv.URL) {
		t.Fatal("member left rotation on a single blip")
	}
}
