package cluster

import (
	"net/http"
	"sync"
	"time"
)

// HealthConfig tunes the proxy's member probing. The zero value selects the
// defaults noted per field.
type HealthConfig struct {
	// Interval between probe rounds. Default 2s.
	Interval time.Duration
	// Timeout per probe request. Default half the interval.
	Timeout time.Duration
	// FailAfter marks a member down after this many consecutive probe
	// failures (hysteresis against one lost packet). Default 2.
	FailAfter int
	// RiseAfter marks a down member up again after this many consecutive
	// probe successes (hysteresis against a flapping restart loop). Default 2.
	RiseAfter int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval / 2
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.RiseAfter <= 0 {
		c.RiseAfter = 2
	}
	return c
}

// MemberHealth is one member's probe state snapshot.
type MemberHealth struct {
	Addr    string    `json:"addr"`
	Healthy bool      `json:"healthy"`
	Fails   int       `json:"consecutive_fails,omitempty"`
	Checked time.Time `json:"last_checked,omitempty"`
}

// Checker probes each member's /v1/healthz on a fixed cadence and applies
// mark-down / mark-up hysteresis. Members start healthy: the fleet boots in
// an accepting state and the first failed round, not the first slow start,
// takes a member out of rotation.
type Checker struct {
	cfg      HealthConfig
	client   *http.Client
	onChange func(addr string, healthy bool) // optional observer

	mu     sync.RWMutex
	states map[string]*memberState

	stop chan struct{}
	done chan struct{}
}

type memberState struct {
	healthy bool
	fails   int // consecutive failures while healthy
	rises   int // consecutive successes while down
	checked time.Time
}

// NewChecker builds a checker over the member addresses. Call Start to begin
// probing; onChange (optional) observes every health transition.
func NewChecker(members []string, cfg HealthConfig, onChange func(addr string, healthy bool)) *Checker {
	cfg = cfg.withDefaults()
	c := &Checker{
		cfg:      cfg,
		client:   &http.Client{Timeout: cfg.Timeout},
		onChange: onChange,
		states:   make(map[string]*memberState, len(members)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, m := range members {
		c.states[m] = &memberState{healthy: true}
	}
	return c
}

// Start launches the probe loop; Stop terminates it.
func (c *Checker) Start() {
	go func() {
		defer close(c.done)
		ticker := time.NewTicker(c.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-ticker.C:
				c.probeAll()
			}
		}
	}()
}

// Stop ends the probe loop and waits for it to exit.
func (c *Checker) Stop() {
	close(c.stop)
	<-c.done
}

// probeAll checks every member concurrently and applies the hysteresis.
func (c *Checker) probeAll() {
	c.mu.RLock()
	addrs := make([]string, 0, len(c.states))
	for a := range c.states {
		addrs = append(addrs, a)
	}
	c.mu.RUnlock()

	var wg sync.WaitGroup
	for _, addr := range addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			c.record(addr, c.probe(addr))
		}(addr)
	}
	wg.Wait()
}

// probe reports one member's liveness: /v1/healthz answering 200.
func (c *Checker) probe(addr string) bool {
	resp, err := c.client.Get(addr + "/v1/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// record applies one probe result with mark-down / mark-up hysteresis.
func (c *Checker) record(addr string, ok bool) {
	var flipped bool
	var nowHealthy bool
	c.mu.Lock()
	st := c.states[addr]
	if st == nil {
		c.mu.Unlock()
		return
	}
	st.checked = time.Now()
	if ok {
		st.fails = 0
		if !st.healthy {
			st.rises++
			if st.rises >= c.cfg.RiseAfter {
				st.healthy, st.rises = true, 0
				flipped, nowHealthy = true, true
			}
		}
	} else {
		st.rises = 0
		if st.healthy {
			st.fails++
			if st.fails >= c.cfg.FailAfter {
				st.healthy, st.fails = false, 0
				flipped, nowHealthy = true, false
			}
		}
	}
	c.mu.Unlock()
	if flipped && c.onChange != nil {
		c.onChange(addr, nowHealthy)
	}
}

// Healthy reports whether a member is currently in rotation.
func (c *Checker) Healthy(addr string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := c.states[addr]
	return st != nil && st.healthy
}

// Snapshot lists every member's probe state, sorted by address.
func (c *Checker) Snapshot() []MemberHealth {
	c.mu.RLock()
	out := make([]MemberHealth, 0, len(c.states))
	for addr, st := range c.states {
		out = append(out, MemberHealth{Addr: addr, Healthy: st.healthy, Fails: st.fails, Checked: st.checked})
	}
	c.mu.RUnlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Addr < out[j-1].Addr; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
