package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("model-%d", i)
	}
	return keys
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return out
}

func TestRingOwnersDistinctAndStable(t *testing.T) {
	r, err := NewRing(members(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range ringKeys(50) {
		owners := r.Owners(key, 3)
		if len(owners) != 3 {
			t.Fatalf("%s: %d owners", key, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("%s: duplicate owner %s", key, o)
			}
			seen[o] = true
		}
		// Lookups are deterministic.
		again := r.Owners(key, 3)
		for i := range owners {
			if owners[i] != again[i] {
				t.Fatalf("%s: owners changed between lookups", key)
			}
		}
	}
	// Replication clamps to the member count.
	if got := r.Owners("anything", 99); len(got) != 5 {
		t.Fatalf("clamped owners: %d", len(got))
	}
}

// TestRingPlacementStability is the consistent-hashing property: removing
// one of N members must remap only the keys it owned (~1/N), and adding a
// member back must move only the keys it takes over.
func TestRingPlacementStability(t *testing.T) {
	const n = 6
	keys := ringKeys(2000)
	full, err := NewRing(members(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	smaller, err := NewRing(members(n)[:n-1], 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := members(n)[n-1]
	moved := 0
	for _, key := range keys {
		before := full.Owners(key, 1)[0]
		after := smaller.Owners(key, 1)[0]
		if before != after {
			moved++
			// Only keys the removed member owned may move.
			if before != removed {
				t.Fatalf("%s moved from surviving member %s to %s", key, before, after)
			}
		}
	}
	// The removed member owned ~1/6 of the keys. Allow generous imbalance:
	// moved keys must stay below 2x the fair share and above zero.
	fair := len(keys) / n
	if moved == 0 || moved > 2*fair {
		t.Fatalf("moved %d of %d keys on member removal (fair share %d)", moved, len(keys), fair)
	}

	// Load spreads: every member is primary for a nontrivial key share.
	counts := map[string]int{}
	for _, key := range keys {
		counts[full.Owners(key, 1)[0]]++
	}
	for _, m := range members(n) {
		if counts[m] < fair/4 {
			t.Fatalf("member %s is primary for only %d of %d keys", m, counts[m], len(keys))
		}
	}
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty member accepted")
	}
}
