// Package cluster scales duetserve horizontally: a consistent-hash ring
// places each model on a replica subset of the fleet, a health checker
// tracks which members are serving, and a thin stateless proxy routes
// estimates to the owners — failing over between replicas — and drives
// rolling installs of retrained model versions across them.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per member. 64 vnodes keep the
// ring's per-member load imbalance in the low single-digit percents for
// small fleets while the ring stays a few KB.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over member addresses. Each
// member projects VNodes points onto the 64-bit hash circle; a key's owners
// are the first R distinct members at or after the key's hash, walking
// clockwise. Adding or removing one member therefore remaps only the keys
// whose arcs it gains or loses — about 1/N of them — which is what keeps a
// membership change from invalidating the whole fleet's model placement and
// cache affinity.
type Ring struct {
	members []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	owner int // index into members
}

// NewRing builds a ring over the given member addresses with vnodes virtual
// nodes each (<= 0 selects DefaultVNodes). Member order does not matter;
// duplicate members are an error.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: a ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{
		members: append([]string(nil), members...),
		points:  make([]ringPoint, 0, len(members)*vnodes),
	}
	for i, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member address")
		}
		if seen[m] {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
		seen[m] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", m, v)), owner: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r, nil
}

// Members returns the ring's member addresses in construction order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Owners returns the key's replica set in preference order: the first n
// distinct members clockwise from the key's hash. n is clamped to the
// member count. The first element is the key's primary owner.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.owner] {
			taken[p.owner] = true
			out = append(out, r.members[p.owner])
		}
	}
	return out
}

// hash64 is FNV-1a with a splitmix64 finalizer. Raw FNV-1a avalanches
// poorly on short strings that differ only in a trailing digit — exactly
// what model names look like — which clusters key hashes onto a slice of
// the circle and starves some members; the finalizer spreads them.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
