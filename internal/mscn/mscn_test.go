package mscn

import (
	"testing"

	"duet/internal/exec"
	"duet/internal/relation"
	"duet/internal/workload"
)

func testTable(rows int) *relation.Table {
	return relation.Generate(relation.SynConfig{
		Name: "t", Rows: rows, Seed: 51,
		Cols: []relation.ColSpec{
			{Name: "a", NDV: 10, Skew: 1.4, Parent: -1},
			{Name: "b", NDV: 5, Skew: 0, Parent: 0, Noise: 0.2},
			{Name: "c", NDV: 30, Skew: 1.2, Parent: -1},
		},
	})
}

func TestTrainInWorkloadAccuracy(t *testing.T) {
	tbl := testTable(500)
	gen := workload.GenConfig{Seed: 42, NumQueries: 400, MinPreds: 1, MaxPreds: 3, BoundedCol: -1}
	labeled := exec.Label(tbl, workload.Generate(tbl, gen))
	m := New(tbl, Config{Hidden: 64, Seed: 1})
	cfg := DefaultTrainConfig()
	cfg.Epochs = 40
	losses, dur := TrainTimed(m, labeled, cfg)
	if dur <= 0 {
		t.Fatal("duration")
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	var sum float64
	for _, lq := range labeled {
		sum += workload.QError(m.EstimateCard(lq.Query), float64(lq.Card))
	}
	if mean := sum / float64(len(labeled)); mean > 6 {
		t.Fatalf("in-workload mean Q-Error %.3f", mean)
	}
}

// TestWorkloadDrift demonstrates Problem (5): accuracy on a drifted workload
// is substantially worse than in-workload.
func TestWorkloadDrift(t *testing.T) {
	tbl := testTable(500)
	train := exec.Label(tbl, workload.Generate(tbl, workload.GenConfig{
		Seed: 42, NumQueries: 300, MinPreds: 1, MaxPreds: 1, BoundedCol: 0, BoundedFrac: 0.1}))
	drifted := exec.Label(tbl, workload.Generate(tbl, workload.GenConfig{
		Seed: 1234, NumQueries: 200, MinPreds: 2, MaxPreds: 3, BoundedCol: -1}))
	m := New(tbl, Config{Hidden: 64, Seed: 2})
	cfg := DefaultTrainConfig()
	cfg.Epochs = 40
	Train(m, train, cfg)
	meanOn := func(ws []workload.LabeledQuery) float64 {
		var sum float64
		for _, lq := range ws {
			sum += workload.QError(m.EstimateCard(lq.Query), float64(lq.Card))
		}
		return sum / float64(len(ws))
	}
	in := meanOn(train)
	out := meanOn(drifted)
	if out <= in {
		t.Logf("drift did not degrade accuracy this run (in=%.2f out=%.2f)", in, out)
	}
	if out < 1 {
		t.Fatal("impossible q-error")
	}
}

func TestEmptyQueryAndSize(t *testing.T) {
	tbl := testTable(100)
	m := New(tbl, DefaultConfig())
	if m.EstimateCard(workload.Query{}) != 100 {
		t.Fatal("empty query should return |T|")
	}
	if m.SizeBytes() <= 0 || m.Name() != "mscn" {
		t.Fatal("metadata")
	}
}

func TestEstimatesWithinRange(t *testing.T) {
	tbl := testTable(200)
	m := New(tbl, Config{Hidden: 32, Seed: 3})
	qs := workload.Generate(tbl, workload.GenConfig{Seed: 5, NumQueries: 50, MinPreds: 1, MaxPreds: 3, BoundedCol: -1})
	for _, q := range qs {
		card := m.EstimateCard(q)
		if card < 0 || card > float64(tbl.NumRows())*1.01 {
			t.Fatalf("estimate %v out of range", card)
		}
	}
}
