// Package mscn implements the MSCN baseline (Kipf et al., CIDR 2019) for
// single-table workloads: a set-based query-driven regressor. Each predicate
// is featurized as [column one-hot | operator one-hot | normalized value],
// embedded by a shared MLP, mean-pooled, and regressed to a normalized
// log-cardinality by a head MLP. It is purely query-driven: fast and
// accurate in-workload, but subject to workload drift (the paper's Problem
// 5), which Table II's Rand-Q columns expose.
package mscn

import (
	"math"
	"math/rand"
	"time"

	"duet/internal/nn"
	"duet/internal/relation"
	"duet/internal/tensor"
	"duet/internal/workload"
)

// Config describes an MSCN model.
type Config struct {
	Hidden int // width of both MLPs
	Seed   int64
}

// DefaultConfig mirrors the usual MSCN(bitmaps)-style 256-unit setting at a
// single-table scale.
func DefaultConfig() Config { return Config{Hidden: 128, Seed: 42} }

// Model is an MSCN estimator.
type Model struct {
	table *relation.Table
	cfg   Config

	featW   int
	predNet *nn.Sequential // per-predicate embedding
	headNet *nn.Sequential // pooled embedding -> normalized log card
	params  []*nn.Param

	logMax float64 // log(|T|+1): normalization range
}

// New builds an untrained MSCN model.
func New(t *relation.Table, cfg Config) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{table: t, cfg: cfg}
	m.featW = t.NumCols() + int(workload.NumOps) + 1
	h := cfg.Hidden
	m.predNet = nn.NewSequential(
		nn.NewLinear(m.featW, h, rng), nn.NewReLU(),
		nn.NewLinear(h, h, rng), nn.NewReLU(),
	)
	m.headNet = nn.NewSequential(
		nn.NewLinear(h, h, rng), nn.NewReLU(),
		nn.NewLinear(h, 1, rng), nn.NewSigmoid(),
	)
	m.params = append(m.predNet.Params(), m.headNet.Params()...)
	m.logMax = math.Log(float64(t.NumRows()) + 1)
	return m
}

// Name identifies the estimator.
func (m *Model) Name() string { return "mscn" }

// SizeBytes reports parameter memory.
func (m *Model) SizeBytes() int64 { return nn.SizeBytes(m.params) }

// Params returns the trainable parameters.
func (m *Model) Params() []*nn.Param { return m.params }

// featurize writes one predicate's features.
func (m *Model) featurize(dst []float32, p workload.Predicate) {
	for i := range dst {
		dst[i] = 0
	}
	dst[p.Col] = 1
	dst[m.table.NumCols()+int(p.Op)] = 1
	ndv := m.table.Cols[p.Col].NumDistinct()
	denom := float64(ndv - 1)
	if denom < 1 {
		denom = 1
	}
	dst[m.featW-1] = float32(float64(p.Code) / denom)
}

// pool runs the predicate net over a flattened batch and mean-pools per
// query. rows[i] gives the query of flattened predicate i.
func (m *Model) pool(flat *tensor.Matrix, rows []int32, nQueries int, counts []int) *tensor.Matrix {
	emb := m.predNet.Forward(flat)
	pooled := tensor.New(nQueries, emb.Cols)
	for i, r := range rows {
		dst := pooled.Row(int(r))
		for j, v := range emb.Row(i) {
			dst[j] += v
		}
	}
	for qi := 0; qi < nQueries; qi++ {
		if counts[qi] > 0 {
			inv := float32(1.0 / float64(counts[qi]))
			row := pooled.Row(qi)
			for j := range row {
				row[j] *= inv
			}
		}
	}
	return pooled
}

// forwardBatch returns the normalized log-card predictions for queries.
func (m *Model) forwardBatch(queries []workload.Query) (*tensor.Matrix, *tensor.Matrix, []int32, []int) {
	total := 0
	for _, q := range queries {
		total += len(q.Preds)
	}
	flat := tensor.New(total, m.featW)
	rows := make([]int32, total)
	counts := make([]int, len(queries))
	k := 0
	for qi, q := range queries {
		counts[qi] = len(q.Preds)
		for _, p := range q.Preds {
			m.featurize(flat.Row(k), p)
			rows[k] = int32(qi)
			k++
		}
	}
	pooled := m.pool(flat, rows, len(queries), counts)
	out := m.headNet.Forward(pooled)
	return out, pooled, rows, counts
}

// EstimateCard predicts the query's cardinality.
func (m *Model) EstimateCard(q workload.Query) float64 {
	if len(q.Preds) == 0 {
		return float64(m.table.NumRows())
	}
	out, _, _, _ := m.forwardBatch([]workload.Query{q})
	return m.denormalize(float64(out.Data[0]))
}

func (m *Model) normalize(card float64) float64 {
	if card < 1 {
		card = 1
	}
	return math.Log(card) / m.logMax
}

func (m *Model) denormalize(y float64) float64 {
	return math.Exp(y * m.logMax)
}

// TrainConfig controls supervised training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
}

// DefaultTrainConfig returns MSCN training defaults.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 60, BatchSize: 64, LR: 1e-3, Seed: 42}
}

// Train fits the model on the labeled workload with MSE over normalized
// log-cardinalities and returns the per-epoch training loss.
func Train(m *Model, queries []workload.LabeledQuery, cfg TrainConfig) []float64 {
	opt := nn.NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	var epochLosses []float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(queries))
		var lossSum float64
		var steps int
		for off := 0; off < len(perm); off += cfg.BatchSize {
			end := off + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			batch := make([]workload.Query, 0, end-off)
			targets := make([]float32, 0, end-off)
			for _, idx := range perm[off:end] {
				lq := queries[idx]
				if len(lq.Query.Preds) == 0 {
					continue
				}
				batch = append(batch, lq.Query)
				targets = append(targets, float32(m.normalize(float64(lq.Card))))
			}
			if len(batch) == 0 {
				continue
			}
			nn.ZeroGrads(m.params)
			out, _, rows, counts := m.forwardBatch(batch)
			tgt := tensor.FromSlice(len(batch), 1, targets)
			dOut := tensor.New(len(batch), 1)
			loss := nn.MSE(out, tgt, dOut)
			dPooled := m.headNet.Backward(dOut)
			// Un-pool: distribute each query's gradient to its predicates.
			dEmb := tensor.New(len(rows), dPooled.Cols)
			for i, r := range rows {
				inv := float32(1.0 / float64(counts[r]))
				src := dPooled.Row(int(r))
				dst := dEmb.Row(i)
				for j, v := range src {
					dst[j] = v * inv
				}
			}
			m.predNet.Backward(dEmb)
			nn.ClipGradNorm(m.params, 16)
			opt.Step(m.params)
			lossSum += loss
			steps++
		}
		epochLosses = append(epochLosses, lossSum/float64(steps))
	}
	return epochLosses
}

// TrainTimed wraps Train and reports the wall-clock duration.
func TrainTimed(m *Model, queries []workload.LabeledQuery, cfg TrainConfig) ([]float64, time.Duration) {
	start := time.Now()
	losses := Train(m, queries, cfg)
	return losses, time.Since(start)
}
