// Package estimator defines the interface every cardinality estimator in
// this repository implements, plus shared evaluation helpers.
package estimator

import (
	"time"

	"duet/internal/relation"
	"duet/internal/workload"
)

// Estimator estimates the cardinality of a query against the table it was
// built for.
type Estimator interface {
	// Name identifies the method ("duet", "naru", ...).
	Name() string
	// EstimateCard returns the estimated number of matching tuples.
	EstimateCard(q workload.Query) float64
	// SizeBytes reports the memory footprint of the model/synopsis.
	SizeBytes() int64
}

// Result is the evaluation outcome of one estimator on one workload.
type Result struct {
	Estimator string
	Stats     workload.Stats
	MeanLatNS float64 // mean per-query estimation latency
	SizeBytes int64
}

// Evaluate runs est on labeled queries, returning Q-Error stats and mean
// estimation latency. Estimation runs single-threaded to make latency
// comparable across methods, matching how the paper reports per-query cost.
func Evaluate(est Estimator, queries []workload.LabeledQuery) Result {
	errs := make([]float64, len(queries))
	var total time.Duration
	for i, lq := range queries {
		start := time.Now()
		card := est.EstimateCard(lq.Query)
		total += time.Since(start)
		errs[i] = workload.QError(card, float64(lq.Card))
	}
	mean := 0.0
	if len(queries) > 0 {
		mean = float64(total.Nanoseconds()) / float64(len(queries))
	}
	return Result{
		Estimator: est.Name(),
		Stats:     workload.Summarize(errs),
		MeanLatNS: mean,
		SizeBytes: est.SizeBytes(),
	}
}

// TableEstimator couples an estimator with the table it models; some
// harnesses need the table for context (|T|, NDVs).
type TableEstimator struct {
	Est   Estimator
	Table *relation.Table
}
