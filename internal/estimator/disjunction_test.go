package estimator

import (
	"testing"

	"duet/internal/exec"
	"duet/internal/relation"
	"duet/internal/workload"
)

// exactEstimator wraps the exact executor as an Estimator, isolating the
// inclusion-exclusion logic from model error.
type exactEstimator struct{ t *relation.Table }

func (e exactEstimator) Name() string { return "exact" }
func (e exactEstimator) EstimateCard(q workload.Query) float64 {
	return float64(exec.Cardinality(e.t, q))
}
func (e exactEstimator) SizeBytes() int64 { return 0 }

func disjTable() *relation.Table {
	return relation.Generate(relation.SynConfig{
		Name: "t", Rows: 500, Seed: 91,
		Cols: []relation.ColSpec{
			{Name: "a", NDV: 10, Skew: 1.3, Parent: -1},
			{Name: "b", NDV: 6, Skew: 0, Parent: 0, Noise: 0.2},
		},
	})
}

// bruteDNF counts rows satisfying any term.
func bruteDNF(t *relation.Table, q DNFQuery) float64 {
	count := 0
rows:
	for r := 0; r < t.NumRows(); r++ {
		for _, term := range q.Terms {
			ok := true
			for _, p := range term.Preds {
				if !p.Matches(t.Cols[p.Col].Codes.At(r)) {
					ok = false
					break
				}
			}
			if ok {
				count++
				continue rows
			}
		}
	}
	return float64(count)
}

func TestEstimateDNFExactWithExactOracle(t *testing.T) {
	tbl := disjTable()
	est := exactEstimator{t: tbl}
	cases := []DNFQuery{
		{Terms: []workload.Query{
			{Preds: []workload.Predicate{{Col: 0, Op: workload.OpLe, Code: 2}}},
			{Preds: []workload.Predicate{{Col: 0, Op: workload.OpGe, Code: 7}}},
		}},
		{Terms: []workload.Query{
			{Preds: []workload.Predicate{{Col: 0, Op: workload.OpEq, Code: 1}}},
			{Preds: []workload.Predicate{{Col: 1, Op: workload.OpEq, Code: 2}}},
			{Preds: []workload.Predicate{{Col: 0, Op: workload.OpGt, Code: 8}}},
		}},
		// Overlapping terms: inclusion-exclusion must not double count.
		{Terms: []workload.Query{
			{Preds: []workload.Predicate{{Col: 0, Op: workload.OpLe, Code: 5}}},
			{Preds: []workload.Predicate{{Col: 0, Op: workload.OpLe, Code: 3}}},
		}},
	}
	for i, q := range cases {
		got := EstimateDNF(est, q, int64(tbl.NumRows()))
		want := bruteDNF(tbl, q)
		if got != want {
			t.Fatalf("case %d: got %v want %v", i, got, want)
		}
	}
}

func TestEstimateDNFEdgeCases(t *testing.T) {
	tbl := disjTable()
	est := exactEstimator{t: tbl}
	if got := EstimateDNF(est, DNFQuery{}, 500); got != 0 {
		t.Fatalf("empty DNF: %v", got)
	}
	// A single term is just the conjunction.
	q := DNFQuery{Terms: []workload.Query{
		{Preds: []workload.Predicate{{Col: 1, Op: workload.OpGe, Code: 3}}},
	}}
	if got, want := EstimateDNF(est, q, 500), est.EstimateCard(q.Terms[0]); got != want {
		t.Fatalf("single term: %v vs %v", got, want)
	}
	// Result is clamped to [0, |T|] even with an inconsistent estimator.
	bad := constEstimator{card: 1e9}
	if got := EstimateDNF(bad, q, 500); got != 500 {
		t.Fatalf("clamp: %v", got)
	}
}
