package estimator

import "duet/internal/workload"

// DNFQuery is a disjunction of conjunctive queries (OR of ANDs). The paper
// supports disjunctions by converting them into conjunctions; this helper
// implements that conversion via inclusion-exclusion over any conjunctive
// estimator.
type DNFQuery struct {
	Terms []workload.Query
}

// EstimateDNF estimates |q1 ∨ q2 ∨ ... ∨ qk| with inclusion-exclusion:
//
//	|∪ q_i| = Σ|q_i| − Σ|q_i ∧ q_j| + Σ|q_i ∧ q_j ∧ q_l| − ...
//
// Each intersection is itself a conjunction (predicate lists concatenated),
// estimable by the underlying model. The number of estimator calls is
// 2^k − 1, so k is capped at MaxDNFTerms.
func EstimateDNF(est Estimator, q DNFQuery, tableRows int64) float64 {
	k := len(q.Terms)
	if k == 0 {
		return 0
	}
	if k > MaxDNFTerms {
		k = MaxDNFTerms
	}
	var total float64
	for mask := 1; mask < 1<<k; mask++ {
		var conj workload.Query
		bits := 0
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				conj.Preds = append(conj.Preds, q.Terms[i].Preds...)
				bits++
			}
		}
		card := est.EstimateCard(conj)
		if bits%2 == 1 {
			total += card
		} else {
			total -= card
		}
	}
	if total < 0 {
		total = 0
	}
	if max := float64(tableRows); total > max {
		total = max
	}
	return total
}

// MaxDNFTerms bounds inclusion-exclusion blow-up (2^k − 1 estimator calls).
const MaxDNFTerms = 8
