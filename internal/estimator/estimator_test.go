package estimator

import (
	"testing"

	"duet/internal/relation"
	"duet/internal/workload"
)

// constEstimator returns a fixed cardinality.
type constEstimator struct{ card float64 }

func (c constEstimator) Name() string                          { return "const" }
func (c constEstimator) EstimateCard(q workload.Query) float64 { return c.card }
func (c constEstimator) SizeBytes() int64                      { return 8 }

func TestEvaluateStats(t *testing.T) {
	queries := []workload.LabeledQuery{
		{Card: 10}, {Card: 100}, {Card: 1000},
	}
	r := Evaluate(constEstimator{card: 100}, queries)
	if r.Estimator != "const" || r.SizeBytes != 8 {
		t.Fatalf("metadata: %+v", r)
	}
	if r.Stats.N != 3 {
		t.Fatalf("N=%d", r.Stats.N)
	}
	// Q-Errors are 10, 1, 10.
	if r.Stats.Max != 10 || r.Stats.Median != 10 {
		t.Fatalf("stats: %+v", r.Stats)
	}
	if r.MeanLatNS < 0 {
		t.Fatal("latency")
	}
}

func TestEvaluateEmptyWorkload(t *testing.T) {
	r := Evaluate(constEstimator{card: 1}, nil)
	if r.Stats.N != 0 || r.MeanLatNS != 0 {
		t.Fatalf("empty workload: %+v", r)
	}
}

func TestTableEstimatorBinding(t *testing.T) {
	tbl := relation.NewTable("t", []*relation.Column{relation.NewIntColumn("a", []int64{1, 2, 3})})
	te := TableEstimator{Est: constEstimator{card: 3}, Table: tbl}
	if te.Table.NumRows() != 3 || te.Est.Name() != "const" {
		t.Fatal("binding")
	}
}
