package duet_test

import (
	"bytes"
	"math"
	"testing"

	"duet"
	"duet/internal/core"
	"duet/internal/deepdb"
	"duet/internal/estimator"
	"duet/internal/exec"
	"duet/internal/hist"
	"duet/internal/naru"
	"duet/internal/relation"
	"duet/internal/sample"
	"duet/internal/workload"
)

// TestAllEstimatorsAgreeOnTrivialQueries: every estimator must return ~|T|
// for the unconstrained query and ~0/small for a contradiction-free but
// maximally selective one.
func TestAllEstimatorsAgreeOnTrivialQueries(t *testing.T) {
	tbl := relation.SynCensus(1200, 9)
	n := float64(tbl.NumRows())
	ests := []estimator.Estimator{
		sample.NewSampler(tbl, 0.1, 1),
		sample.NewIndep(tbl),
		hist.New(tbl, hist.DefaultConfig()),
		deepdb.New(tbl, deepdb.DefaultConfig()),
		naru.New(tbl, naruTiny()),
		core.NewModel(tbl, duetTiny()),
	}
	for _, est := range ests {
		got := est.EstimateCard(workload.Query{})
		if math.Abs(got-n) > 0.05*n {
			t.Fatalf("%s: empty query estimate %v, want ~%v", est.Name(), got, n)
		}
	}
}

func naruTiny() naru.Config {
	c := naru.DefaultConfig()
	c.Hidden = []int{24, 24}
	c.Samples = 32
	return c
}

func duetTiny() core.Config {
	c := core.DefaultConfig()
	c.Hidden = []int{24, 24}
	return c
}

// TestDuetVsNaruDeterminismContrast is the paper's Problem (4) demonstrated
// end to end: Duet returns bit-identical estimates across repeated calls
// while Naru's progressive sampling varies with its RNG state.
func TestDuetVsNaruDeterminismContrast(t *testing.T) {
	tbl := relation.SynCensus(2000, 4)
	q := workload.Query{Preds: []workload.Predicate{
		{Col: 0, Op: workload.OpLe, Code: 30},
		{Col: 3, Op: workload.OpGe, Code: 4},
		{Col: 12, Op: workload.OpLt, Code: 50},
	}}

	dm := core.NewModel(tbl, duetTiny())
	tc := core.DefaultTrainConfig()
	tc.Epochs = 2
	tc.BatchSize = 256
	tc.Lambda = 0
	core.Train(dm, tc)
	first := dm.EstimateCard(q)
	for i := 0; i < 5; i++ {
		if dm.EstimateCard(q) != first {
			t.Fatal("Duet estimate varied across calls")
		}
	}

	nm := naru.New(tbl, naruTiny())
	nc := naru.DefaultTrainConfig()
	nc.Epochs = 2
	nc.BatchSize = 256
	naru.Train(nm, nc)
	nm.SetSeed(1)
	a := nm.EstimateCard(q)
	varied := false
	for seed := int64(2); seed < 12 && !varied; seed++ {
		nm.SetSeed(seed)
		if nm.EstimateCard(q) != a {
			varied = true
		}
	}
	if !varied {
		t.Log("naru estimates coincided across 10 seeds (statistically possible, but suspicious)")
	}
}

// TestJoinPipeline: materialize a join, train Duet on it, and check that a
// filtered join estimate lands within an order of magnitude of the truth
// after a short training run.
func TestJoinPipeline(t *testing.T) {
	dim := relation.Generate(relation.SynConfig{Name: "dim", Rows: 300, Seed: 5,
		Cols: []relation.ColSpec{
			{Name: "id", NDV: 300, Skew: 0, Parent: -1},
			{Name: "group", NDV: 6, Skew: 1.4, Parent: 0, Noise: 0.1},
		}})
	fact := relation.Generate(relation.SynConfig{Name: "fact", Rows: 2500, Seed: 6,
		Cols: []relation.ColSpec{
			{Name: "dim_id", NDV: 300, Skew: 1.3, Parent: -1},
			{Name: "metric", NDV: 40, Skew: 1.2, Parent: -1},
		}})
	joined, err := relation.EquiJoin("j", fact, "dim_id", dim, "id")
	if err != nil {
		t.Fatal(err)
	}
	wantRows, err := relation.JoinCardinality(fact, "dim_id", dim, "id")
	if err != nil {
		t.Fatal(err)
	}
	if int64(joined.NumRows()) != wantRows {
		t.Fatalf("join rows %d, dot product %d", joined.NumRows(), wantRows)
	}
	m := core.NewModel(joined, duetTiny())
	tc := core.DefaultTrainConfig()
	tc.Epochs = 6
	tc.BatchSize = 256
	tc.Lambda = 0
	core.Train(m, tc)
	q, err := workload.ParseQuery(joined, "r_group<=2")
	if err != nil {
		t.Fatal(err)
	}
	est := m.EstimateCard(q)
	act := float64(exec.Cardinality(joined, q))
	if qe := workload.QError(est, act); qe > 10 {
		t.Fatalf("filtered join estimate q-error %.2f (est %.0f act %.0f)", qe, est, act)
	}
}

// TestParseEstimateWorkflow mirrors cmd/duetquery end to end through the
// public facade plus the parser.
func TestParseEstimateWorkflow(t *testing.T) {
	csv := "price,qty,city\n10,1,'a'\n20,2,'b'\n30,1,'a'\n20,3,'c'\n"
	tbl, err := duet.LoadCSV(bytes.NewReader([]byte(csv)), "t", true)
	if err != nil {
		t.Fatal(err)
	}
	m := duet.New(tbl, duetTiny())
	q, err := workload.ParseQuery(tbl, "price>=20 AND qty<=2")
	if err != nil {
		t.Fatal(err)
	}
	act := duet.Card(tbl, q)
	if act != 2 { // rows (20,2) and (30,1)
		t.Fatalf("exact card %d want 2", act)
	}
	est := m.EstimateCard(q)
	if est < 0 || est > float64(tbl.NumRows()) {
		t.Fatalf("estimate %v out of range", est)
	}
}

// TestLongTailFineTuneWorkflow: collect the worst queries of a workload and
// fine-tune on them, the paper's deployment loop.
func TestLongTailFineTuneWorkflow(t *testing.T) {
	tbl := relation.SynCensus(2500, 8)
	m := core.NewModel(tbl, duetTiny())
	tc := core.DefaultTrainConfig()
	tc.Epochs = 3
	tc.BatchSize = 256
	tc.Lambda = 0
	core.Train(m, tc)
	ws := exec.Label(tbl, workload.Generate(tbl, workload.RandQConfig(tbl.NumCols(), 150)))
	bad := core.CollectBadQueries(m, ws, 3)
	if len(bad) == 0 {
		t.Skip("no long-tail queries at this scale")
	}
	worstBefore := maxQErr(m, bad)
	ft := core.DefaultFineTuneConfig()
	ft.Steps = 80
	core.FineTune(m, bad, ft)
	worstAfter := maxQErr(m, bad)
	if worstAfter > worstBefore*1.05 {
		t.Fatalf("fine-tuning worsened the tail: %.2f -> %.2f", worstBefore, worstAfter)
	}
}

func maxQErr(m *core.Model, ws []workload.LabeledQuery) float64 {
	var mx float64
	for _, lq := range ws {
		if q := workload.QError(m.EstimateCard(lq.Query), float64(lq.Card)); q > mx {
			mx = q
		}
	}
	return mx
}
