package duet_test

import (
	"bytes"
	"context"
	"testing"

	"duet"
)

func facadeTable() *duet.Table {
	return duet.SynCensus(800, 3)
}

func TestFacadeEndToEnd(t *testing.T) {
	tbl := facadeTable()
	m := duet.New(tbl, smallCfg())
	cfg := duet.DefaultTrainConfig()
	cfg.Epochs = 3
	cfg.BatchSize = 128
	cfg.Lambda = 0
	duet.Train(m, cfg)

	qs := duet.GenerateWorkload(tbl, duet.RandQConfig(tbl.NumCols(), 30))
	labeled := duet.Label(tbl, qs)
	for _, lq := range labeled {
		est := m.EstimateCard(lq.Query)
		if q := duet.QError(est, float64(lq.Card)); q < 1 {
			t.Fatalf("impossible q-error %v", q)
		}
	}
}

func smallCfg() duet.Config {
	c := duet.DefaultConfig()
	c.Hidden = []int{32, 32}
	return c
}

func TestPredRawValueMapping(t *testing.T) {
	// Build a table with known values and exercise raw-value predicates.
	csv := "price,qty\n10,1\n20,2\n30,3\n20,2\n40,1\n"
	tbl, err := duet.LoadCSV(bytes.NewReader([]byte(csv)), "orders", true)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    duet.Predicate
		want int64
	}{
		{duet.Pred(tbl, "price", duet.OpLe, 20), 3},  // 10,20,20
		{duet.Pred(tbl, "price", duet.OpLe, 25), 3},  // non-exact upper
		{duet.Pred(tbl, "price", duet.OpLt, 20), 1},  // 10
		{duet.Pred(tbl, "price", duet.OpGe, 25), 2},  // 30,40
		{duet.Pred(tbl, "price", duet.OpGt, 20), 2},  // 30,40
		{duet.Pred(tbl, "price", duet.OpGt, 25), 2},  // non-exact lower
		{duet.Pred(tbl, "price", duet.OpEq, 20), 2},  // exact
		{duet.Pred(tbl, "price", duet.OpEq, 25), 0},  // absent value
		{duet.Pred(tbl, "price", duet.OpGe, 100), 0}, // beyond domain
	}
	for _, tc := range cases {
		got := duet.Card(tbl, duet.Q(tc.p))
		if got != tc.want {
			t.Fatalf("predicate %v: card %d want %d", tc.p, got, tc.want)
		}
	}
}

func TestPredUnknownColumnPanics(t *testing.T) {
	tbl := facadeTable()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	duet.Pred(tbl, "no-such-column", duet.OpEq, 1)
}

func TestSaveLoadThroughFacade(t *testing.T) {
	tbl := facadeTable()
	m := duet.New(tbl, smallCfg())
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := duet.LoadModel(&buf, tbl)
	if err != nil {
		t.Fatal(err)
	}
	q := duet.Q(duet.Predicate{Col: 0, Op: duet.OpLe, Code: 5})
	if m.EstimateCard(q) != m2.EstimateCard(q) {
		t.Fatal("loaded model disagrees")
	}
}

func TestSyntheticFacades(t *testing.T) {
	if duet.SynDMV(100, 1).NumCols() != 11 {
		t.Fatal("SynDMV")
	}
	if duet.SynKDD(100, 1).NumCols() != 100 {
		t.Fatal("SynKDD")
	}
	if c := duet.InQConfig(14, 10, 0); c.NumQueries != 10 || !c.GammaPreds {
		t.Fatal("InQConfig")
	}
}

// TestSampledJoinGraphFacade walks the public sampled-materialization flow:
// sampler + budget view in the BuildJoinGraphView layout, stream training
// through TrainConfig.Source, and a registry Sampled view answering join
// sizes exactly from the base tables.
func TestSampledJoinGraphFacade(t *testing.T) {
	left := duet.SynCensus(300, 5)
	left.Name = "l"
	right := duet.SynCensus(200, 6)
	right.Name = "r"
	lk, rk := left.Cols[0].Name, right.Cols[0].Name
	edges := []duet.JoinEdge{{LeftTable: "l", LeftCol: lk, RightTable: "r", RightCol: rk}}
	tables := []*duet.Table{left, right}

	full, err := duet.BuildJoinGraphView("lr", tables, edges)
	if err != nil {
		t.Fatal(err)
	}
	view, sampler, err := duet.BuildSampledJoinGraphView("lr", tables, edges, 256, 9)
	if err != nil {
		t.Fatal(err)
	}
	if view.NumRows() != 256 || sampler.Total() != int64(full.NumRows()) {
		t.Fatalf("sample %d rows of Total %d; materialized FOJ %d", view.NumRows(), sampler.Total(), full.NumRows())
	}
	for i, c := range full.Cols {
		if view.Cols[i].Name != c.Name || view.Cols[i].NumDistinct() != c.NumDistinct() {
			t.Fatalf("layout mismatch at column %d: %s/%d vs %s/%d",
				i, view.Cols[i].Name, view.Cols[i].NumDistinct(), c.Name, c.NumDistinct())
		}
	}

	m := duet.New(view, smallCfg())
	tc := duet.DefaultTrainConfig()
	tc.Epochs = 2
	tc.BatchSize = 128
	tc.Lambda = 0
	tc.Source = sampler
	tc.SourceRows = 256
	duet.Train(m, tc)

	reg := duet.NewRegistry(duet.RegistryConfig{Dir: t.TempDir()})
	defer reg.Close()
	for _, tb := range tables {
		if err := reg.Add(tb.Name, tb, duet.New(tb, smallCfg()), duet.AddOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	spec := &duet.JoinGraphSpec{Tables: []string{"l", "r"},
		Edges:  []duet.JoinEdgeSpec{{Left: "l", LeftCol: lk, Right: "r", RightCol: rk}},
		Sample: 256}
	if err := reg.Add("lr", view, m, duet.AddOpts{Graph: spec}); err != nil {
		t.Fatal(err)
	}
	exact, err := duet.JoinGraphCardinality(tables, edges)
	if err != nil {
		t.Fatal(err)
	}
	_, card, err := reg.EstimateExpr(context.Background(), "", "l."+lk+" = r."+rk)
	if err != nil {
		t.Fatal(err)
	}
	if card != float64(exact) {
		t.Fatalf("sampled join-size answer %v, want exact %d", card, exact)
	}
}
