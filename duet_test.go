package duet_test

import (
	"bytes"
	"testing"

	"duet"
)

func facadeTable() *duet.Table {
	return duet.SynCensus(800, 3)
}

func TestFacadeEndToEnd(t *testing.T) {
	tbl := facadeTable()
	m := duet.New(tbl, smallCfg())
	cfg := duet.DefaultTrainConfig()
	cfg.Epochs = 3
	cfg.BatchSize = 128
	cfg.Lambda = 0
	duet.Train(m, cfg)

	qs := duet.GenerateWorkload(tbl, duet.RandQConfig(tbl.NumCols(), 30))
	labeled := duet.Label(tbl, qs)
	for _, lq := range labeled {
		est := m.EstimateCard(lq.Query)
		if q := duet.QError(est, float64(lq.Card)); q < 1 {
			t.Fatalf("impossible q-error %v", q)
		}
	}
}

func smallCfg() duet.Config {
	c := duet.DefaultConfig()
	c.Hidden = []int{32, 32}
	return c
}

func TestPredRawValueMapping(t *testing.T) {
	// Build a table with known values and exercise raw-value predicates.
	csv := "price,qty\n10,1\n20,2\n30,3\n20,2\n40,1\n"
	tbl, err := duet.LoadCSV(bytes.NewReader([]byte(csv)), "orders", true)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    duet.Predicate
		want int64
	}{
		{duet.Pred(tbl, "price", duet.OpLe, 20), 3},  // 10,20,20
		{duet.Pred(tbl, "price", duet.OpLe, 25), 3},  // non-exact upper
		{duet.Pred(tbl, "price", duet.OpLt, 20), 1},  // 10
		{duet.Pred(tbl, "price", duet.OpGe, 25), 2},  // 30,40
		{duet.Pred(tbl, "price", duet.OpGt, 20), 2},  // 30,40
		{duet.Pred(tbl, "price", duet.OpGt, 25), 2},  // non-exact lower
		{duet.Pred(tbl, "price", duet.OpEq, 20), 2},  // exact
		{duet.Pred(tbl, "price", duet.OpEq, 25), 0},  // absent value
		{duet.Pred(tbl, "price", duet.OpGe, 100), 0}, // beyond domain
	}
	for _, tc := range cases {
		got := duet.Card(tbl, duet.Q(tc.p))
		if got != tc.want {
			t.Fatalf("predicate %v: card %d want %d", tc.p, got, tc.want)
		}
	}
}

func TestPredUnknownColumnPanics(t *testing.T) {
	tbl := facadeTable()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	duet.Pred(tbl, "no-such-column", duet.OpEq, 1)
}

func TestSaveLoadThroughFacade(t *testing.T) {
	tbl := facadeTable()
	m := duet.New(tbl, smallCfg())
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := duet.LoadModel(&buf, tbl)
	if err != nil {
		t.Fatal(err)
	}
	q := duet.Q(duet.Predicate{Col: 0, Op: duet.OpLe, Code: 5})
	if m.EstimateCard(q) != m2.EstimateCard(q) {
		t.Fatal("loaded model disagrees")
	}
}

func TestSyntheticFacades(t *testing.T) {
	if duet.SynDMV(100, 1).NumCols() != 11 {
		t.Fatal("SynDMV")
	}
	if duet.SynKDD(100, 1).NumCols() != 100 {
		t.Fatal("SynKDD")
	}
	if c := duet.InQConfig(14, 10, 0); c.NumQueries != 10 || !c.GammaPreds {
		t.Fatal("InQConfig")
	}
}
