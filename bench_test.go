package duet_test

import (
	"io"
	"os"
	"testing"

	"duet/internal/bench"
)

// benchOut streams experiment output to stdout when DUET_BENCH_VERBOSE=1,
// and discards it otherwise so -bench runs stay readable.
func benchOut() io.Writer {
	if os.Getenv("DUET_BENCH_VERBOSE") == "1" {
		return os.Stdout
	}
	return io.Discard
}

// runExp executes one paper experiment per benchmark iteration at the Tiny
// scale (the shape-preserving small configuration; use cmd/duetbench with
// -scale quick|full for report-grade runs).
func runExp(b *testing.B, id string) {
	b.Helper()
	w := benchOut()
	for i := 0; i < b.N; i++ {
		if err := bench.RunExperiment(id, w, bench.Tiny); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1MPSN regenerates Table I (MPSN variants MLP/REC/RNN).
func BenchmarkTable1MPSN(b *testing.B) { runExp(b, "table1") }

// BenchmarkTable2Accuracy regenerates Table II (all estimators × 3 datasets
// × {In-Q, Rand-Q}).
func BenchmarkTable2Accuracy(b *testing.B) { runExp(b, "table2") }

// BenchmarkTable3Throughput regenerates Table III (training throughput,
// including UAE's OOM row).
func BenchmarkTable3Throughput(b *testing.B) { runExp(b, "table3") }

// BenchmarkFig3LossCurves regenerates Figure 3 (hybrid loss convergence).
func BenchmarkFig3LossCurves(b *testing.B) { runExp(b, "fig3") }

// BenchmarkFig4WorkloadCDF regenerates Figure 4 (workload cardinality CDFs).
func BenchmarkFig4WorkloadCDF(b *testing.B) { runExp(b, "fig4") }

// BenchmarkFig5Lambda regenerates Figure 5 (λ sweep).
func BenchmarkFig5Lambda(b *testing.B) { runExp(b, "fig5") }

// BenchmarkFig6Scalability regenerates Figure 6 (latency vs column count).
func BenchmarkFig6Scalability(b *testing.B) { runExp(b, "fig6") }

// BenchmarkFig7EstCost regenerates Figure 7 (estimation cost of learned
// methods).
func BenchmarkFig7EstCost(b *testing.B) { runExp(b, "fig7") }

// BenchmarkFig8Convergence regenerates Figure 8 (Rand-Q convergence).
func BenchmarkFig8Convergence(b *testing.B) { runExp(b, "fig8") }

// BenchmarkFig9HybridConv regenerates Figure 9 (In-Q convergence, Duet vs
// DuetD).
func BenchmarkFig9HybridConv(b *testing.B) { runExp(b, "fig9") }

// BenchmarkAblationMu sweeps the expand coefficient µ of Algorithm 1.
func BenchmarkAblationMu(b *testing.B) { runExp(b, "ablation-mu") }

// BenchmarkAblationMergedMPSN compares per-column vs merged block-diagonal
// MPSN inference.
func BenchmarkAblationMergedMPSN(b *testing.B) { runExp(b, "ablation-merge") }

// BenchmarkAblationEncoding compares value-encoding strategies.
func BenchmarkAblationEncoding(b *testing.B) { runExp(b, "ablation-enc") }

// BenchmarkAblationStability measures estimate variance across RNG states
// (the paper's Problem 4: Duet deterministic, progressive sampling not).
func BenchmarkAblationStability(b *testing.B) { runExp(b, "ablation-stability") }
